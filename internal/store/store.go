// Package store is the content-addressed experiment result cache.
//
// Keys address results by what they ARE, not when they were computed:
// SHA-256 over (experiment name, canonical config JSON, seed, code
// version). Every NightVision experiment is bit-deterministic for that
// tuple (internal/runner's guarantee), so a cached cell is byte-
// identical to a cold run and may be served forever — a sweep resumed
// after a crash recomputes only its missing cells.
//
// Two tiers: an in-memory LRU for hot cells, and an optional on-disk
// tier that survives process restarts. Disk writes go through a temp
// file plus atomic rename, and every entry embeds a checksum of its
// payload; a corrupted or truncated entry is detected on read, evicted
// from disk, and reported as a miss so the caller recomputes it.
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/obs"
)

// FS is the disk tier's filesystem seam. Production uses the real OS
// filesystem; internal/chaos injects one with deterministic faults.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
}

// File is the temp-file seam CreateTemp returns; *os.File satisfies it.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Name() string
}

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }

// OSFS returns the real-filesystem implementation of FS.
func OSFS() FS { return osFS{} }

// Key derives the content address of a result cell. canonicalConfig
// must be the canonical (sorted-key) JSON from
// registry.Experiment.CanonicalConfig; codeVersion is
// registry.CodeVersion. Fields are length-prefixed so no two distinct
// tuples can collide by concatenation.
func Key(experiment string, canonicalConfig []byte, seed uint64, codeVersion string) string {
	h := sha256.New()
	fmt.Fprintf(h, "%d:%s", len(experiment), experiment)
	fmt.Fprintf(h, "%d:%s", len(canonicalConfig), canonicalConfig)
	fmt.Fprintf(h, "seed:%d", seed)
	fmt.Fprintf(h, "%d:%s", len(codeVersion), codeVersion)
	return hex.EncodeToString(h.Sum(nil))
}

// Stats counts store activity. Hits = MemHits + DiskHits.
type Stats struct {
	Hits           uint64 `json:"hits"`
	MemHits        uint64 `json:"mem_hits"`
	DiskHits       uint64 `json:"disk_hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	MemEvictions   uint64 `json:"mem_evictions"`
	CorruptEvicted uint64 `json:"corrupt_evicted"`
	// DiskWriteFailures counts Put calls whose disk-tier write failed
	// (the memory tier still holds the value; only future cross-restart
	// hits are lost).
	DiskWriteFailures uint64 `json:"disk_write_failures"`
}

// storeObs mirrors Stats into a metrics registry; every field is
// nil-safe, so an un-instrumented store pays one predictable branch per
// event.
type storeObs struct {
	hits              *obs.Counter
	misses            *obs.Counter
	puts              *obs.Counter
	memEvictions      *obs.Counter
	corruptEvictions  *obs.Counter
	diskWriteFailures *obs.Counter
}

// Store is the two-tier cache. All methods are safe for concurrent use.
type Store struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	dir   string // "" = memory-only
	fs    FS
	sync  bool
	stats Stats
	obs   storeObs
}

// Option tunes New beyond capacity and directory.
type Option func(*Store)

// WithFS replaces the disk tier's filesystem (fault injection in
// internal/chaos; the default is the real OS filesystem).
func WithFS(fsys FS) Option { return func(s *Store) { s.fs = fsys } }

// WithSync sets the Sync option: when true (the default) the disk tier
// fsyncs each data file before its atomic rename, so a committed entry
// survives power loss, not just process death. Turning it off trades
// that durability for write latency.
func WithSync(enabled bool) Option { return func(s *Store) { s.sync = enabled } }

// Instrument registers the store's counters with r and starts
// mirroring every subsequent event into them. Call once, before
// traffic; events recorded earlier are not backfilled.
func (s *Store) Instrument(r *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = storeObs{
		hits:              r.Counter("store_cache_hits_total", "result cache hits (memory or disk tier)"),
		misses:            r.Counter("store_cache_misses_total", "result cache misses"),
		puts:              r.Counter("store_cache_puts_total", "result cache writes"),
		memEvictions:      r.Counter("store_cache_mem_evictions_total", "memory-tier LRU evictions"),
		corruptEvictions:  r.Counter("store_cache_corrupt_evictions_total", "disk-tier entries evicted for failing checksum or framing"),
		diskWriteFailures: r.Counter("store_disk_write_failures_total", "disk-tier writes that failed (value kept in memory tier only)"),
	}
}

type memEntry struct {
	key string
	val []byte
}

// New creates a store holding up to memCap entries in memory (memCap
// <= 0 defaults to 1024). dir, when non-empty, enables the disk tier
// rooted there (created if missing).
func New(memCap int, dir string, opts ...Option) (*Store, error) {
	if memCap <= 0 {
		memCap = 1024
	}
	s := &Store{cap: memCap, ll: list.New(), items: make(map[string]*list.Element), dir: dir, fs: osFS{}, sync: true}
	for _, opt := range opts {
		opt(s)
	}
	if dir != "" {
		if err := s.fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return s, nil
}

// Get returns the cached result bytes for key. A disk-tier hit is
// promoted into the memory tier. The returned slice is a copy.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		s.stats.MemHits++
		s.obs.hits.Inc()
		return clone(el.Value.(*memEntry).val), true
	}
	if s.dir != "" {
		if val, ok := s.diskGet(key); ok {
			s.memPut(key, val)
			s.stats.Hits++
			s.stats.DiskHits++
			s.obs.hits.Inc()
			return clone(val), true
		}
	}
	s.stats.Misses++
	s.obs.misses.Inc()
	return nil, false
}

// Peek returns the cached bytes for key without touching LRU order or
// the hit/miss statistics. It is the peer-facing lookup path
// (GET /v1/store/{key} in internal/cluster): a remote read-through
// probe should neither skew this node's cache accounting nor promote
// entries its own traffic never asked for. A disk-tier hit is returned
// without promotion; corrupt entries are still evicted.
func (s *Store) Peek(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		return clone(el.Value.(*memEntry).val), true
	}
	if s.dir != "" {
		if val, ok := s.diskGet(key); ok {
			return clone(val), true
		}
	}
	return nil, false
}

// Put stores the result bytes for key in both tiers. The value is
// copied; the disk write is atomic (temp file + rename).
func (s *Store) Put(key string, val []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	s.obs.puts.Inc()
	s.memPut(key, clone(val))
	if s.dir == "" {
		return nil
	}
	if err := s.diskPut(key, val); err != nil {
		s.stats.DiskWriteFailures++
		s.obs.diskWriteFailures.Inc()
		return err
	}
	return nil
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len reports the number of memory-tier entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

func clone(b []byte) []byte {
	return append([]byte(nil), b...)
}

// memPut inserts into the LRU, evicting from the back past capacity.
// Caller holds s.mu; val must already be private to the store.
func (s *Store) memPut(key string, val []byte) {
	if el, ok := s.items[key]; ok {
		el.Value.(*memEntry).val = val
		s.ll.MoveToFront(el)
		return
	}
	s.items[key] = s.ll.PushFront(&memEntry{key: key, val: val})
	for s.ll.Len() > s.cap {
		back := s.ll.Back()
		s.ll.Remove(back)
		delete(s.items, back.Value.(*memEntry).key)
		s.stats.MemEvictions++
		s.obs.memEvictions.Inc()
	}
}

// Disk-tier format: "nvstore1 <sha256-hex-of-payload>\n<payload>".
// Sharded by the first byte of the key to keep directories small.

const diskMagic = "nvstore1"

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

func (s *Store) diskPut(key string, val []byte) error {
	shard := filepath.Join(s.dir, key[:2])
	if err := s.fs.MkdirAll(shard, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	sum := sha256.Sum256(val)
	tmp, err := s.fs.CreateTemp(s.dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer s.fs.Remove(tmp.Name()) // no-op after a successful rename
	_, werr := fmt.Fprintf(tmp, "%s %s\n", diskMagic, hex.EncodeToString(sum[:]))
	if werr == nil {
		_, werr = tmp.Write(val)
	}
	// fsync before the rename: the rename alone makes the entry visible
	// atomically but not durable — on power loss a renamed-but-unsynced
	// file can come back empty or truncated.
	if werr == nil && s.sync {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("store: %w", werr)
	}
	if err := s.fs.Rename(tmp.Name(), s.path(key)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// diskGet reads and verifies a disk entry. A malformed or
// checksum-failing entry is deleted (corrupt eviction) and reported as
// a miss. Caller holds s.mu.
func (s *Store) diskGet(key string) ([]byte, bool) {
	raw, err := s.fs.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	header, payload, found := strings.Cut(string(raw), "\n")
	magic, sumHex, ok := strings.Cut(header, " ")
	if !found || !ok || magic != diskMagic || len(sumHex) != 64 {
		s.evictCorrupt(key)
		return nil, false
	}
	sum := sha256.Sum256([]byte(payload))
	if hex.EncodeToString(sum[:]) != sumHex {
		s.evictCorrupt(key)
		return nil, false
	}
	return []byte(payload), true
}

func (s *Store) evictCorrupt(key string) {
	s.fs.Remove(s.path(key))
	s.stats.CorruptEvicted++
	s.obs.corruptEvictions.Inc()
}
