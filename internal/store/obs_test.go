package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// TestCorruptEvictionCounter: a checksum-failing disk entry must show
// up in the store_cache_corrupt_evictions_total counter, not just the
// Stats struct, so operators see silent cache damage on /v1/metrics.
func TestCorruptEvictionCounter(t *testing.T) {
	dir := t.TempDir()
	key := Key("fig2", []byte(`{"iters":3}`), 5, "v1")
	s1, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(key, []byte("genuine result")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	s2.Instrument(r)
	if _, ok := s2.Get(key); ok {
		t.Fatal("corrupted entry served")
	}
	if got := r.Counter("store_cache_corrupt_evictions_total", "").Value(); got != 1 {
		t.Errorf("store_cache_corrupt_evictions_total = %d, want 1", got)
	}
	if got := r.Counter("store_cache_misses_total", "").Value(); got != 1 {
		t.Errorf("store_cache_misses_total = %d, want 1", got)
	}
	if st := s2.Stats(); st.CorruptEvicted != 1 {
		t.Errorf("Stats.CorruptEvicted = %d, want 1", st.CorruptEvicted)
	}
}

// TestDiskWriteFailureSurfaced: when the disk tier refuses the write
// (here: the shard path is occupied by a regular file, so MkdirAll
// fails), Put must return the error AND count it in both Stats and the
// store_disk_write_failures_total counter — while the memory tier keeps
// serving the value.
func TestDiskWriteFailureSurfaced(t *testing.T) {
	dir := t.TempDir()
	key := Key("fig4", []byte(`{"iters":2}`), 7, "v1")
	if err := os.WriteFile(filepath.Join(dir, key[:2]), []byte("in the way"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	s.Instrument(r)

	if err := s.Put(key, []byte("payload")); err == nil {
		t.Fatal("Put succeeded despite blocked shard directory")
	}
	if got := r.Counter("store_disk_write_failures_total", "").Value(); got != 1 {
		t.Errorf("store_disk_write_failures_total = %d, want 1", got)
	}
	st := s.Stats()
	if st.DiskWriteFailures != 1 {
		t.Errorf("Stats.DiskWriteFailures = %d, want 1", st.DiskWriteFailures)
	}
	// The memory tier was populated before the disk write was attempted.
	if got, ok := s.Get(key); !ok || string(got) != "payload" {
		t.Fatalf("memory tier lost the value after disk failure: %q %v", got, ok)
	}
}

// TestHitMissPutCounters: the three high-traffic counters the smoke
// script scrapes.
func TestHitMissPutCounters(t *testing.T) {
	s, err := New(4, "")
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	s.Instrument(r)
	key := Key("fig2", nil, 1, "v1")
	if _, ok := s.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("miss after Put")
	}
	for name, want := range map[string]uint64{
		"store_cache_hits_total":   1,
		"store_cache_misses_total": 1,
		"store_cache_puts_total":   1,
	} {
		if got := r.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
