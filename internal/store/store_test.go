package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestKeyDistinguishesFields(t *testing.T) {
	base := Key("fig2", []byte(`{"iters":3}`), 5, "v1")
	variants := []string{
		Key("fig4", []byte(`{"iters":3}`), 5, "v1"),
		Key("fig2", []byte(`{"iters":4}`), 5, "v1"),
		Key("fig2", []byte(`{"iters":3}`), 6, "v1"),
		Key("fig2", []byte(`{"iters":3}`), 5, "v2"),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d collides with base key", i)
		}
	}
	if again := Key("fig2", []byte(`{"iters":3}`), 5, "v1"); again != base {
		t.Fatal("Key not deterministic")
	}
	// Concatenation ambiguity: ("ab","c") vs ("a","bc") must differ.
	if Key("ab", []byte("c"), 0, "") == Key("a", []byte("bc"), 0, "") {
		t.Fatal("length prefixing failed")
	}
}

func TestMemoryTierHitMissStats(t *testing.T) {
	s, err := New(8, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("k1"); ok {
		t.Fatal("hit on empty store")
	}
	if err := s.Put("k1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("k1")
	if !ok || string(got) != "payload" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Hits != 1 || st.MemHits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats %+v", st)
	}
	// The returned slice is a copy: mutating it must not poison the cache.
	got[0] = 'X'
	if again, _ := s.Get("k1"); string(again) != "payload" {
		t.Fatal("cached value aliased caller memory")
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := New(2, "")
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Get("a") // a is now most recent
	s.Put("c", []byte("3"))
	if _, ok := s.Get("b"); ok {
		t.Fatal("LRU entry b not evicted")
	}
	if _, ok := s.Get("a"); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if st := s.Stats(); st.MemEvictions != 1 {
		t.Fatalf("MemEvictions = %d, want 1", st.MemEvictions)
	}
}

// TestDiskRoundTripSurvivesRestart proves the ISSUE acceptance
// criterion: disk-tier entries outlive the process (modeled as a second
// Store over the same directory).
func TestDiskRoundTripSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	key := Key("fig2", []byte(`{"iters":3}`), 5, "v1")

	s1, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte(`{"gap":8.0}`)
	if err := s1.Put(key, want); err != nil {
		t.Fatal(err)
	}

	s2, err := New(4, dir) // "restart"
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("after restart Get = %q, %v", got, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.MemHits != 0 {
		t.Fatalf("restart stats %+v, want one disk hit", st)
	}
	// Promotion: second read is a memory hit.
	if _, ok := s2.Get(key); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("promotion stats %+v", st)
	}
}

// TestCorruptEntryDetectedAndEvicted flips payload bytes on disk and
// checks the store reports a miss (so the caller recomputes) and
// removes the bad file.
func TestCorruptEntryDetectedAndEvicted(t *testing.T) {
	dir := t.TempDir()
	key := Key("fig2", []byte(`{"iters":3}`), 5, "v1")
	s1, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(key, []byte("genuine result")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("corrupted entry served")
	}
	if st := s2.Stats(); st.CorruptEvicted != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupted file not evicted from disk")
	}
	// Recompute path: a fresh Put must restore service.
	if err := s2.Put(key, []byte("recomputed")); err != nil {
		t.Fatal(err)
	}
	s3, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s3.Get(key); !ok || string(got) != "recomputed" {
		t.Fatalf("recomputed entry missing: %q %v", got, ok)
	}
}

// TestTruncatedHeaderEvicted covers the other corruption shape: a file
// cut off mid-header (e.g. a crash before the atomic rename discipline
// existed, or external tampering).
func TestTruncatedHeaderEvicted(t *testing.T) {
	dir := t.TempDir()
	key := Key("x", nil, 0, "v")
	s, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key)
	os.MkdirAll(filepath.Dir(path), 0o755)
	os.WriteFile(path, []byte("nvstore1 deadbeef"), 0o644)
	if _, ok := s.Get(key); ok {
		t.Fatal("truncated entry served")
	}
	if st := s.Stats(); st.CorruptEvicted != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestNoTempFileDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(Key("e", nil, uint64(i), "v"), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			t.Fatalf("stray file in cache root: %s", e.Name())
		}
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := New(32, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := Key("c", nil, uint64(i%16), "v")
				if i%2 == 0 {
					s.Put(key, []byte(fmt.Sprintf("v%d", i%16)))
				} else {
					s.Get(key)
				}
			}
		}(g)
	}
	wg.Wait()
}

// recordingFS wraps the real filesystem, counting Sync calls on data
// files and optionally failing them — the fault-injectable fs seam the
// Sync option is specified against.
type recordingFS struct {
	FS
	mu       sync.Mutex
	syncs    int
	failSync bool
}

type recordingFile struct {
	File
	fs *recordingFS
}

func (r *recordingFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := r.FS.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &recordingFile{File: f, fs: r}, nil
}

func (f *recordingFile) Sync() error {
	f.fs.mu.Lock()
	f.fs.syncs++
	fail := f.fs.failSync
	f.fs.mu.Unlock()
	if fail {
		return fmt.Errorf("injected sync failure")
	}
	return f.File.Sync()
}

// TestSyncOption: with Sync on (the default) every disk write fsyncs
// the data file before the rename; with Sync off it never does; a
// failing fsync surfaces as a disk write failure while the memory tier
// keeps serving the value.
func TestSyncOption(t *testing.T) {
	key := Key("fig2", []byte(`{"iters":3}`), 5, "v1")

	rec := &recordingFS{FS: OSFS()}
	s, err := New(4, t.TempDir(), WithFS(rec))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if rec.syncs != 1 {
		t.Fatalf("syncs = %d, want 1 (fsync before rename)", rec.syncs)
	}

	rec2 := &recordingFS{FS: OSFS()}
	s2, err := New(4, t.TempDir(), WithFS(rec2), WithSync(false))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(key, []byte("fast")); err != nil {
		t.Fatal(err)
	}
	if rec2.syncs != 0 {
		t.Fatalf("syncs = %d with Sync disabled, want 0", rec2.syncs)
	}

	rec3 := &recordingFS{FS: OSFS(), failSync: true}
	s3, err := New(4, t.TempDir(), WithFS(rec3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.Put(key, []byte("kept-in-memory")); err == nil {
		t.Fatal("Put succeeded despite failing fsync")
	}
	if st := s3.Stats(); st.DiskWriteFailures != 1 {
		t.Fatalf("stats %+v, want one disk write failure", st)
	}
	if got, ok := s3.Get(key); !ok || string(got) != "kept-in-memory" {
		t.Fatalf("memory tier lost the value after disk failure: %q %v", got, ok)
	}
}
