// Package trace defines dynamic PC traces: the ground truth the
// simulator records and the reconstruction the attack produces. The
// fingerprinting pipeline (internal/fingerprint) consumes both.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// Entry is one dynamic instruction: its PC plus the minimal metadata the
// fingerprinting pipeline needs. Reconstructed traces fill only PC (the
// attack cannot see opcodes).
type Entry struct {
	PC   uint64
	Size int      // 0 when unknown (reconstructed traces)
	Kind isa.Kind // KindOther when unknown
}

// Trace is a dynamic instruction sequence.
type Trace []Entry

// PCs returns just the program counters.
func (t Trace) PCs() []uint64 {
	out := make([]uint64, len(t))
	for i, e := range t {
		out[i] = e.PC
	}
	return out
}

// FromPCs builds a metadata-free trace from raw PCs.
func FromPCs(pcs []uint64) Trace {
	t := make(Trace, len(pcs))
	for i, pc := range pcs {
		t[i] = Entry{PC: pc}
	}
	return t
}

// String renders a short preview of the trace.
func (t Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "trace[%d]:", len(t))
	for i, e := range t {
		if i == 8 {
			sb.WriteString(" ...")
			break
		}
		fmt.Fprintf(&sb, " %#x", e.PC)
	}
	return sb.String()
}

// Recorder captures the ground-truth dynamic trace from a core's retire
// stream. Only the harness uses it; attack code never sees it.
type Recorder struct {
	T      Trace
	filter func(pc uint64) bool
}

// NewRecorder attaches a recorder to core. If filter is non-nil, only
// PCs it accepts are recorded (e.g. restrict to the enclave range).
func NewRecorder(core *cpu.Core, filter func(pc uint64) bool) *Recorder {
	r := &Recorder{filter: filter}
	prev := core.OnRetire
	core.OnRetire = func(pc uint64, in isa.Inst) {
		if prev != nil {
			prev(pc, in)
		}
		if r.filter == nil || r.filter(pc) {
			r.T = append(r.T, Entry{PC: pc, Size: in.Size, Kind: in.Kind()})
		}
	}
	return r
}

// Reset clears the recorded trace.
func (r *Recorder) Reset() { r.T = r.T[:0] }

// MatchStats compares a reconstructed trace against ground truth
// position by position.
type MatchStats struct {
	Total   int // ground-truth length
	Got     int // reconstructed length
	Correct int // positions where both agree
}

// Rate returns the fraction of ground-truth positions reconstructed
// correctly.
func (m MatchStats) Rate() float64 {
	if m.Total == 0 {
		return 0
	}
	return float64(m.Correct) / float64(m.Total)
}

func (m MatchStats) String() string {
	return fmt.Sprintf("%d/%d correct (%.1f%%), reconstructed %d", m.Correct, m.Total, 100*m.Rate(), m.Got)
}

// Compare aligns two traces position by position (no gap alignment: the
// attack reconstructs one candidate per step, so positions correspond).
func Compare(got, want Trace) MatchStats {
	st := MatchStats{Total: len(want), Got: len(got)}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	for i := 0; i < n; i++ {
		if got[i].PC == want[i].PC {
			st.Correct++
		}
	}
	return st
}
