package trace

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

func TestPCsAndFromPCs(t *testing.T) {
	tr := FromPCs([]uint64{1, 2, 3})
	if len(tr) != 3 || tr[1].PC != 2 {
		t.Fatalf("trace = %+v", tr)
	}
	pcs := tr.PCs()
	if len(pcs) != 3 || pcs[2] != 3 {
		t.Errorf("PCs = %v", pcs)
	}
}

func TestString(t *testing.T) {
	tr := FromPCs(make([]uint64, 20))
	s := tr.String()
	if !strings.Contains(s, "trace[20]") || !strings.Contains(s, "...") {
		t.Errorf("String = %q", s)
	}
}

func TestRecorder(t *testing.T) {
	p := asm.MustAssemble(`
		.org 0x1000
	start:
		nop
		nop
		call fn
		hlt
		.org 0x2000
	fn:
		ret
	`)
	m := mem.New()
	p.LoadInto(m)
	m.Map(0x7f_0000, 0x1000, mem.PermRW)
	c := cpu.New(cpu.Config{}, m)
	c.SetReg(isa.SP, 0x7f_1000)
	c.SetPC(0x1000)
	rec := NewRecorder(c, nil)
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(rec.T) != 5 { // nop nop call ret hlt
		t.Fatalf("recorded %d entries: %v", len(rec.T), rec.T)
	}
	if rec.T[2].Kind != isa.KindCall {
		t.Errorf("entry 2 kind = %v", rec.T[2].Kind)
	}
	rec.Reset()
	if len(rec.T) != 0 {
		t.Error("Reset should clear")
	}
}

func TestRecorderFilter(t *testing.T) {
	p := asm.MustAssemble(".org 0x1000\nstart: nop\nnop\nhlt")
	m := mem.New()
	p.LoadInto(m)
	c := cpu.New(cpu.Config{}, m)
	c.SetPC(0x1000)
	rec := NewRecorder(c, func(pc uint64) bool { return pc == 0x1001 })
	if _, err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(rec.T) != 1 || rec.T[0].PC != 0x1001 {
		t.Errorf("filtered trace = %v", rec.T)
	}
}

func TestCompare(t *testing.T) {
	want := FromPCs([]uint64{1, 2, 3, 4})
	got := FromPCs([]uint64{1, 9, 3})
	st := Compare(got, want)
	if st.Total != 4 || st.Got != 3 || st.Correct != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Rate() != 0.5 {
		t.Errorf("Rate = %v", st.Rate())
	}
	if !strings.Contains(st.String(), "2/4") {
		t.Errorf("String = %q", st.String())
	}
	if (MatchStats{}).Rate() != 0 {
		t.Error("empty Rate = 0")
	}
}

// Edge cases: empty and single-entry traces through every Trace helper.

func TestEmptyTrace(t *testing.T) {
	var tr Trace
	if pcs := tr.PCs(); len(pcs) != 0 {
		t.Errorf("PCs of empty trace = %v", pcs)
	}
	if s := tr.String(); s != "trace[0]:" {
		t.Errorf("String of empty trace = %q", s)
	}
	if got := FromPCs(nil); len(got) != 0 {
		t.Errorf("FromPCs(nil) = %v", got)
	}
	st := Compare(tr, tr)
	if st.Total != 0 || st.Got != 0 || st.Correct != 0 || st.Rate() != 0 {
		t.Errorf("Compare(empty, empty) = %+v rate %v", st, st.Rate())
	}
}

func TestSingleEntryTrace(t *testing.T) {
	tr := FromPCs([]uint64{0x40_0000})
	if len(tr) != 1 || tr[0].PC != 0x40_0000 || tr[0].Size != 0 {
		t.Fatalf("FromPCs single = %+v", tr)
	}
	if st := Compare(tr, tr); st.Rate() != 1.0 {
		t.Errorf("self-compare rate = %v", st.Rate())
	}
	// Reconstructed vs ground truth of different lengths.
	truth := FromPCs([]uint64{0x40_0000, 0x40_0004})
	st := Compare(tr, truth)
	if st.Total != 2 || st.Got != 1 || st.Correct != 1 || st.Rate() != 0.5 {
		t.Errorf("Compare(single, pair) = %+v", st)
	}
	// Reconstructed longer than truth must not panic or over-count.
	st = Compare(truth, tr)
	if st.Total != 1 || st.Got != 2 || st.Correct != 1 || st.Rate() != 1.0 {
		t.Errorf("Compare(pair, single) = %+v", st)
	}
}

func TestRecorderStaysAttachedAfterReset(t *testing.T) {
	p := asm.MustAssemble(`
		.org 0x1000
	start:
		nop
		hlt
	`)
	m := mem.New()
	p.LoadInto(m)
	c := cpu.New(cpu.Config{}, m)
	c.SetPC(0x1000)
	rec := NewRecorder(c, nil)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(rec.T) == 0 {
		t.Fatal("nothing recorded")
	}
	rec.Reset()
	c.SetPC(0x1000)
	if _, err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if len(rec.T) != 2 { // nop hlt, recorded again after Reset
		t.Fatalf("recorder detached after Reset: %v", rec.T)
	}
}
