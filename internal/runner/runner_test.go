package runner

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestMapOrderAndValues: results land in index order whatever the
// worker count.
func TestMapOrderAndValues(t *testing.T) {
	for _, w := range []int{0, 1, 2, 7, 64} {
		got, err := Map(Config{Workers: w}, 100, func(task Task) (int, error) {
			return task.Index * task.Index, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

// TestMapDeterministicRNG: per-task streams depend only on (seed,
// index), so any worker count reproduces the workers=1 run bit for bit.
func TestMapDeterministicRNG(t *testing.T) {
	run := func(workers int) []uint64 {
		out, err := Map(Config{Workers: workers, Seed: 0xA11}, 500, func(task Task) (uint64, error) {
			rng := task.Rand()
			v := rng.Uint64()
			for i := 0; i < task.Index%7; i++ {
				v ^= rng.Uint64()
			}
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := run(1)
	for _, w := range []int{2, 8, 32} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: slot %d = %#x, want %#x", w, i, got[i], want[i])
			}
		}
	}
	// Distinct tasks get distinct streams.
	seen := map[uint64]int{}
	for i, v := range want {
		if j, dup := seen[v]; dup {
			t.Fatalf("tasks %d and %d drew the same first value", i, j)
		}
		seen[v] = i
	}
}

// TestMapError: the lowest-indexed failure is reported and remaining
// work is cancelled.
func TestMapError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := Map(Config{Workers: 4}, 10_000, func(task Task) (int, error) {
		ran.Add(1)
		if task.Index == 17 {
			return 0, fmt.Errorf("task %d: %w", task.Index, boom)
		}
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if n := ran.Load(); n > 9_000 {
		t.Errorf("ran %d tasks after failure at index 17; cancellation did not bite", n)
	}

	// Multiple failures: lowest index wins, independent of schedule.
	for trial := 0; trial < 10; trial++ {
		_, err := Map(Config{Workers: 8}, 100, func(task Task) (int, error) {
			if task.Index%30 == 3 { // fails at 3, 33, 63, 93
				return 0, fmt.Errorf("task %d failed", task.Index)
			}
			return 0, nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("trial %d: err = %v, want task 3 failed", trial, err)
		}
	}
}

// TestMapBoundedGoroutines: a huge task list never inflates the
// goroutine count beyond Workers + O(1).
func TestMapBoundedGoroutines(t *testing.T) {
	const workers = 4
	before := runtime.NumGoroutine()
	var peak atomic.Int64
	_, err := Map(Config{Workers: workers}, 50_000, func(task Task) (int, error) {
		if task.Index%97 == 0 {
			if g := int64(runtime.NumGoroutine()); g > peak.Load() {
				peak.Store(g)
			}
		}
		return task.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if limit := int64(before + workers + 4); peak.Load() > limit {
		t.Errorf("peak goroutines %d > %d (before=%d workers=%d)", peak.Load(), limit, before, workers)
	}
}

// TestMapEmpty and Each smoke coverage.
func TestMapEmpty(t *testing.T) {
	out, err := Map(Config{}, 0, func(Task) (int, error) {
		t.Fatal("fn called for n=0")
		return 0, nil
	})
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(Config{Workers: 3}, 100, func(task Task) error {
		sum.Add(int64(task.Index))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

// TestMapWorkersExceedTasks: worker count clamps to n; tiny task lists
// must not leave idle goroutines spinning.
func TestMapWorkersExceedTasks(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		out, err := Map(Config{Workers: 64}, 2, func(task Task) (int, error) {
			return task.Index + 1, nil
		})
		if err != nil || out[0] != 1 || out[1] != 2 {
			t.Errorf("out=%v err=%v", out, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Map with workers > n did not finish")
	}
}

// TestPoolBoundedAndDrains: StartPool spawns exactly the requested
// workers, runs every pulled task, and Wait returns once the source
// reports exhaustion.
func TestPoolBoundedAndDrains(t *testing.T) {
	const workers = 3
	const tasks = 20
	before := runtime.NumGoroutine()

	var next atomic.Int64
	var ran atomic.Int64
	var peak atomic.Int64
	p := StartPool(workers, func() (func(), bool) {
		i := next.Add(1)
		if i > tasks {
			return nil, false
		}
		return func() {
			if g := int64(runtime.NumGoroutine()); g > peak.Load() {
				peak.Store(g)
			}
			time.Sleep(time.Millisecond)
			ran.Add(1)
		}, true
	})
	p.Wait()
	if ran.Load() != tasks {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), tasks)
	}
	if peak.Load() > int64(before+workers+2) {
		t.Fatalf("goroutines peaked at %d (start %d) with %d workers", peak.Load(), before, workers)
	}
}

// TestPoolSkipsNilTasks: a nil task with ok=true is skipped, not a
// crash — the pull source may use it as a "nothing right now" tick.
func TestPoolSkipsNilTasks(t *testing.T) {
	var calls atomic.Int64
	p := StartPool(1, func() (func(), bool) {
		switch calls.Add(1) {
		case 1:
			return nil, true
		case 2:
			return func() {}, true
		default:
			return nil, false
		}
	})
	p.Wait()
	if calls.Load() != 3 {
		t.Fatalf("pull called %d times, want 3", calls.Load())
	}
}

// TestPoolDefaultWorkerCount: workers <= 0 resolves to GOMAXPROCS,
// mirroring Config.WorkerCount.
func TestPoolDefaultWorkerCount(t *testing.T) {
	var started atomic.Int64
	var release = make(chan struct{})
	p := StartPool(0, func() (func(), bool) {
		if started.Add(1) <= int64(runtime.GOMAXPROCS(0)) {
			return func() { <-release }, true
		}
		return nil, false
	})
	// Every worker claims one blocking task, then each sees exhaustion.
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() < int64(runtime.GOMAXPROCS(0)) {
		if time.Now().After(deadline) {
			t.Fatalf("only %d workers started", started.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	p.Wait()
}
