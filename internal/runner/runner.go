// Package runner is the bounded, deterministic parallel experiment
// engine. Every sweep, matrix and corpus fan-out in internal/experiments
// runs through it.
//
// The engine makes two guarantees that a bare `go`-per-item loop does
// not:
//
//  1. Bounded resources. Map spawns at most Config.Workers goroutines
//     and has them *pull* task indices from a shared counter. The old
//     Figure 12 loop spawned one goroutine per corpus function before
//     acquiring its semaphore — ~175k goroutine stacks up front at paper
//     scale; here peak goroutine growth is Workers, full stop.
//
//  2. Determinism. Results live in index-keyed slots, so output order is
//     the task order regardless of how workers interleave. Randomness is
//     derived per task from (Config.Seed, task index) via nvrand.SplitAt
//     — never from schedule order — so a run with Workers=1 and a run
//     with Workers=8 produce bit-identical results.
//
// On failure the engine cancels remaining work: no worker claims a new
// task once any task has failed, in-flight tasks drain, and the error of
// the lowest-indexed failed task is returned.
package runner

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/nvrand"
	"repro/internal/obs"
)

// Config configures one engine invocation.
type Config struct {
	// Workers bounds the number of concurrent worker goroutines.
	// 0 means runtime.GOMAXPROCS(0); 1 runs tasks inline (serially) on
	// the calling goroutine.
	Workers int
	// Seed is the base seed from which each task derives its private RNG
	// stream (Task.Rand).
	Seed uint64
	// Ctx, when non-nil, is checked in every task loop before a worker
	// claims the next index: a canceled or expired context stops the
	// batch between tasks (in-flight tasks finish) and Map returns
	// context.Cause(Ctx). This is how the job engine's per-job deadlines
	// reach experiments that never check their RunContext themselves —
	// any experiment built on Map/Each is cancelable at task
	// granularity. Nil means never canceled.
	Ctx context.Context
	// TaskCounter, when non-nil, is incremented once per executed task
	// (both the inline and the parallel path). Observation only: it has
	// no effect on scheduling or results.
	TaskCounter *obs.Counter
}

// ctxErr reports the cancellation cause, nil for a nil or live context.
func (c Config) ctxErr() error {
	if c.Ctx == nil {
		return nil
	}
	if c.Ctx.Err() != nil {
		return context.Cause(c.Ctx)
	}
	return nil
}

// WorkerCount resolves the effective worker count: Workers if positive,
// otherwise runtime.GOMAXPROCS(0). Both Map and the persistent Pool use
// this resolution, as does the job engine in internal/jobs.
func (c Config) WorkerCount() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Task identifies one unit of work handed to a Map function.
type Task struct {
	// Index is the task's position in [0, n): the key of its result slot
	// and of its RNG stream.
	Index int
	seed  uint64
}

// Rand returns the task's private deterministic RNG, derived from the
// run seed and the task index only. Two tasks never share a stream, and
// a task's stream does not depend on which worker runs it or when.
func (t Task) Rand() *nvrand.Rand { return nvrand.SplitAt(t.seed, uint64(t.Index)) }

// Map runs fn for every task index in [0, n) on a bounded worker pool
// and returns the n results in index order. fn must be safe for
// concurrent invocation (with Workers > 1) and should derive any
// randomness it needs from its Task, not from shared state.
//
// On error, workers stop claiming new tasks, in-flight tasks finish, and
// the error of the lowest-indexed failed task is returned with nil
// results.
func Map[T any](cfg Config, n int, fn func(Task) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	w := cfg.WorkerCount()
	if w > n {
		w = n
	}
	if w <= 1 {
		// Inline fast path: no goroutines, no synchronization. Identical
		// results by construction — the parallel path below computes the
		// same per-index values into the same slots.
		for i := 0; i < n; i++ {
			if err := cfg.ctxErr(); err != nil {
				return nil, err
			}
			cfg.TaskCounter.Inc()
			v, err := fn(Task{Index: i, seed: cfg.Seed})
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var (
		next     atomic.Int64
		failed   atomic.Bool
		canceled atomic.Bool
		wg       sync.WaitGroup
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for !failed.Load() {
				if cfg.ctxErr() != nil {
					canceled.Store(true)
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cfg.TaskCounter.Inc()
				v, err := fn(Task{Index: i, seed: cfg.Seed})
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if canceled.Load() {
		return nil, cfg.ctxErr()
	}
	return out, nil
}

// Each is Map for side-effecting tasks with no per-task result.
func Each(cfg Config, n int, fn func(Task) error) error {
	_, err := Map(cfg, n, func(t Task) (struct{}, error) {
		return struct{}{}, fn(t)
	})
	return err
}

// Pool is the persistent counterpart of Map: a fixed set of worker
// goroutines that repeatedly pull work from a caller-supplied source.
// Map bounds one batch; Pool bounds a long-lived service — the job
// engine in internal/jobs owns the queue and its scheduling policy
// (priority, cancellation), while Pool owns goroutine lifecycle and the
// concurrency bound. Peak goroutine growth is exactly the worker count
// for the life of the pool.
type Pool struct {
	wg sync.WaitGroup
}

// StartPool starts workers goroutines (resolved via Config.WorkerCount
// semantics: <= 0 means GOMAXPROCS) that loop calling pull. pull must
// be safe for concurrent use and is expected to block until a task is
// available; returning ok=false retires the calling worker permanently.
// The returned task runs on the worker; a nil task with ok=true is
// skipped.
func StartPool(workers int, pull func() (task func(), ok bool)) *Pool {
	w := Config{Workers: workers}.WorkerCount()
	p := &Pool{}
	p.wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer p.wg.Done()
			for {
				task, ok := pull()
				if !ok {
					return
				}
				if task != nil {
					task()
				}
			}
		}()
	}
	return p
}

// Wait blocks until every worker has retired (pull returned ok=false
// once per worker). The pull source is responsible for waking blocked
// workers when shutting down.
func (p *Pool) Wait() { p.wg.Wait() }
