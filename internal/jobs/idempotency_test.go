package jobs

// Duplicate-delivery idempotency tests (PR 10): a retried or
// network-duplicated steal claim, steal ack, or forwarded submission
// must be processed exactly once, asserted down to the journal records.

import (
	"path/filepath"
	"testing"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/store"
)

func countJournalRecords(t *testing.T, dir string, typ journal.Type, jobID string) int {
	t.Helper()
	fsys := journal.OSFS()
	names, err := fsys.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, name := range names {
		raw, err := fsys.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		recs, _ := journal.ParseRecords(raw)
		for _, r := range recs {
			if r.Type == typ && (jobID == "" || r.JobID == jobID) {
				n++
			}
		}
	}
	return n
}

func TestDuplicateStealClaimIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	reg := obs.NewRegistry()
	e, _, gate := blockedEngine(t, Config{Journal: jn, Obs: reg}, 3)
	defer shutdownOK(t, e)
	defer close(gate)

	first := e.StealQueuedClaim("claim-abc", "thief-1", 2)
	if len(first) != 2 {
		t.Fatalf("first delivery stole %d, want 2", len(first))
	}
	// Duplicate delivery of the same claim: identical job set, nothing
	// further stolen, queue depth unchanged.
	dup := e.StealQueuedClaim("claim-abc", "thief-1", 2)
	if len(dup) != 2 || dup[0].ID != first[0].ID || dup[1].ID != first[1].ID {
		t.Fatalf("duplicate claim returned %+v, want the original set %+v", dup, first)
	}
	if e.Depth() != 1 {
		t.Fatalf("queue depth after duplicate = %d, want 1 (no double steal)", e.Depth())
	}
	// A different claim ID is a genuine new steal.
	second := e.StealQueuedClaim("claim-def", "thief-1", 2)
	if len(second) != 1 || second[0].ID == first[0].ID {
		t.Fatalf("new claim = %+v", second)
	}
	// Exactly one TypeStolen journal record per stolen job.
	for _, sj := range first {
		if got := countJournalRecords(t, dir, journal.TypeStolen, sj.ID); got != 1 {
			t.Fatalf("job %s has %d stolen records, want 1", sj.ID, got)
		}
	}
	if got := reg.Counter("jobs_steal_claim_dups_total", "").Value(); got != 1 {
		t.Fatalf("dup claim counter = %d, want 1", got)
	}
}

func TestDuplicateStealAckIsIdempotent(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	st, err := store.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	e, _, gate := blockedEngine(t, Config{Journal: jn, Store: st}, 1)
	defer shutdownOK(t, e)
	defer close(gate)

	stolen := e.StealQueuedClaim("c1", "thief", 1)
	if len(stolen) != 1 {
		t.Fatal("steal failed")
	}
	id := stolen[0].ID
	payload := []byte(`{"v":"remote"}`)
	if err := e.ResolveStolen(id, StateDone, "", payload); err != nil {
		t.Fatal(err)
	}
	// The ack is delivered again (and once more with a conflicting
	// state): the first terminal transition must win both times.
	if err := e.ResolveStolen(id, StateDone, "", payload); err != nil {
		t.Fatalf("duplicate ack: %v", err)
	}
	if err := e.ResolveStolen(id, StateFailed, "late failure", nil); err != nil {
		t.Fatalf("conflicting late ack: %v", err)
	}
	v, _ := e.Get(id)
	if v.State != StateDone || v.Error != "" {
		t.Fatalf("view after duplicate acks: %+v", v)
	}
	if got := countJournalRecords(t, dir, journal.TypeCompleted, id); got != 1 {
		t.Fatalf("job %s has %d completed records, want 1", id, got)
	}
	if got := countJournalRecords(t, dir, journal.TypeFailed, id); got != 0 {
		t.Fatalf("job %s has %d failed records, want 0", id, got)
	}
}

func TestDuplicateSubmitWithIdempotencyKey(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn.Close()
	exps, gate := fakeRegistry()
	defer close(gate)
	reg := obs.NewRegistry()
	e := New(Config{Registry: exps, Workers: 1, Journal: jn, Obs: reg})
	defer shutdownOK(t, e)

	req := Request{Experiment: "echo", Params: map[string]any{"n": 5}, IdempotencyKey: "fwd-123"}
	v1, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if v2.ID != v1.ID {
		t.Fatalf("duplicate submission created a second job: %s vs %s", v2.ID, v1.ID)
	}
	// A distinct key (or none) is a genuinely new submission even with
	// identical parameters.
	v3, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 5}, IdempotencyKey: "fwd-456"})
	if err != nil {
		t.Fatal(err)
	}
	if v3.ID == v1.ID {
		t.Fatalf("distinct key deduplicated: %s", v3.ID)
	}
	if got := countJournalRecords(t, dir, journal.TypeSubmitted, v1.ID); got != 1 {
		t.Fatalf("job %s has %d submitted records, want 1", v1.ID, got)
	}
	if got := reg.Counter("jobs_idempotent_submit_dups_total", "").Value(); got != 1 {
		t.Fatalf("dup submit counter = %d, want 1", got)
	}
}
