package jobs

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// TestListOrderDeterministic: List must return jobs sorted by submit
// sequence — never map-iteration order — including cache-hit jobs that
// were born terminal.
func TestListOrderDeterministic(t *testing.T) {
	reg, _ := fakeRegistry()
	st, err := store.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Registry: reg, Store: st, Workers: 2})
	defer shutdownOK(t, e)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	const n = 12
	want := make([]string, 0, n)
	for i := 0; i < n; i++ {
		// Alternate fresh configs and repeats so some submissions are
		// cache hits.
		v, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": i / 2}})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, v.ID)
		if _, err := e.Wait(ctx, v.ID); err != nil {
			t.Fatal(err)
		}
	}
	for round := 0; round < 5; round++ {
		got := e.List()
		if len(got) != n {
			t.Fatalf("List returned %d jobs, want %d", len(got), n)
		}
		for i, v := range got {
			if v.ID != want[i] {
				t.Fatalf("round %d: List[%d] = %s, want %s", round, i, v.ID, want[i])
			}
		}
	}
}

// TestEngineMetricsAndTrace covers the engine's registered instruments
// and the per-job trace accessor: submissions and completions count,
// duration and queue-latency histograms observe executed jobs, gauges
// return to zero at idle, and traces exist exactly for jobs that ran.
func TestEngineMetricsAndTrace(t *testing.T) {
	reg, _ := fakeRegistry()
	st, err := store.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	r := obs.NewRegistry()
	e := New(Config{Registry: reg, Store: st, Workers: 2, Obs: r, Tracing: true})
	defer shutdownOK(t, e)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	first, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Wait(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	cachedV, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !cachedV.FromCache {
		t.Fatalf("second submission not cached: %+v", cachedV)
	}

	counter := func(name string) uint64 { return r.Counter(name, "").Value() }
	if got := counter("jobs_submitted_total"); got != 2 {
		t.Errorf("jobs_submitted_total = %d, want 2", got)
	}
	done := r.CounterL("jobs_completed_total", "", obs.Labels{"state": "done"})
	if got := done.Value(); got != 2 {
		t.Errorf("jobs_completed_total{state=done} = %d, want 2", got)
	}
	dur := r.Histogram("job_duration_seconds", "", obs.DefaultDurationBuckets())
	if dur.Count() != 1 {
		t.Errorf("job_duration_seconds count = %d, want 1 (cache hits don't execute)", dur.Count())
	}
	lat := r.Histogram("job_queue_latency_seconds", "", obs.DefaultDurationBuckets())
	if lat.Count() != 1 {
		t.Errorf("job_queue_latency_seconds count = %d, want 1", lat.Count())
	}
	if g := r.Gauge("jobs_running", "").Value(); g != 0 {
		t.Errorf("jobs_running = %d at idle, want 0", g)
	}
	if g := r.Gauge("jobs_queue_depth", "").Value(); g != 0 {
		t.Errorf("jobs_queue_depth = %d at idle, want 0", g)
	}

	if _, ok := e.Trace(first.ID); !ok {
		t.Error("no trace for the executed job")
	}
	if _, ok := e.Trace(cachedV.ID); ok {
		t.Error("cache-hit job has a trace; nothing ran")
	}
	if _, ok := e.Trace("job-does-not-exist"); ok {
		t.Error("trace for unknown job")
	}

	// Failed jobs land in the failed completion counter.
	pv, err := e.Submit(Request{Experiment: "panic", Params: nil})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Wait(ctx, pv.ID); err != nil {
		t.Fatal(err)
	}
	failed := r.CounterL("jobs_completed_total", "", obs.Labels{"state": "failed"})
	if got := failed.Value(); got != 1 {
		t.Errorf("jobs_completed_total{state=failed} = %d, want 1", got)
	}
}

// TestMetricsDisabledEngineWorks: a nil Obs registry must leave every
// instrument a no-op, not a crash.
func TestMetricsDisabledEngineWorks(t *testing.T) {
	reg, _ := fakeRegistry()
	e := New(Config{Registry: reg, Workers: 1})
	defer shutdownOK(t, e)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 3; i++ {
		v, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": i}})
		if err != nil {
			t.Fatal(err)
		}
		final, err := e.Wait(ctx, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("job %d: %+v", i, final)
		}
		if _, ok := e.Trace(v.ID); ok {
			t.Fatal(fmt.Sprintf("job %d has a trace with tracing disabled", i))
		}
	}
}
