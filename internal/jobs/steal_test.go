package jobs

// Work-stealing handshake tests: the victim-side claim/ack/reclaim
// state machine that internal/cluster drives over HTTP. The invariant
// under test everywhere: a stolen job reaches exactly one terminal
// state no matter how acks, reclaims and crashes interleave.

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/store"
)

// blockedEngine returns an engine whose single worker is parked on a
// "block" job, plus n queued "echo" jobs ready to be stolen.
func blockedEngine(t *testing.T, cfg Config, n int) (*Engine, []View, chan struct{}) {
	t.Helper()
	reg, gate := fakeRegistry()
	cfg.Registry = reg
	cfg.Workers = 1
	e := New(cfg)
	blocker, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, blocker.ID, StateRunning)
	queued := make([]View, 0, n)
	for i := 0; i < n; i++ {
		v, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": i + 10}})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, v)
	}
	return e, queued, gate
}

func TestStealQueuedHandsOutJobs(t *testing.T) {
	e, queued, gate := blockedEngine(t, Config{}, 3)
	defer shutdownOK(t, e)
	defer close(gate) // LIFO: release the worker, then drain

	stolen := e.StealQueued("thief-1", 2)
	if len(stolen) != 2 {
		t.Fatalf("stole %d jobs, want 2", len(stolen))
	}
	if e.Depth() != 1 {
		t.Fatalf("queue depth after steal = %d, want 1", e.Depth())
	}
	for _, sj := range stolen {
		if sj.Experiment != "echo" || sj.Key == "" || len(sj.Config) == 0 {
			t.Fatalf("stolen job missing identity: %+v", sj)
		}
		var params map[string]any
		if err := json.Unmarshal(sj.Config, &params); err != nil {
			t.Fatalf("stolen config does not parse: %v", err)
		}
		v, _ := e.Get(sj.ID)
		if v.State != StateQueued || v.RemoteNode != "thief-1" {
			t.Fatalf("victim-side stolen job view: %+v", v)
		}
	}
	// The un-stolen job is still queued locally.
	last, _ := e.Get(queued[2].ID)
	if last.RemoteNode != "" || last.State != StateQueued {
		t.Fatalf("unstolen job view: %+v", last)
	}
}

// TestStealDeadlineEncoding: "no deadline" must survive the handoff as
// -1 — a literal 0 would re-apply the registry default on resubmit.
func TestStealDeadlineEncoding(t *testing.T) {
	e, _, gate := blockedEngine(t, Config{}, 1)
	defer shutdownOK(t, e)
	defer close(gate)
	stolen := e.StealQueued("thief", 1)
	if len(stolen) != 1 || stolen[0].DeadlineMS != -1 {
		t.Fatalf("deadline-free stolen job carries DeadlineMS %d, want -1", stolen[0].DeadlineMS)
	}
}

func TestResolveStolenDonePutsStoreFirst(t *testing.T) {
	st, err := store.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	e, _, gate := blockedEngine(t, Config{Store: st}, 1)
	defer shutdownOK(t, e)
	defer close(gate)

	stolen := e.StealQueued("thief", 1)
	payload := []byte(`{"v":"remote"}`)
	if err := e.ResolveStolen(stolen[0].ID, StateDone, "", payload); err != nil {
		t.Fatal(err)
	}
	v, _ := e.Get(stolen[0].ID)
	if v.State != StateDone || string(v.Result) != string(payload) {
		t.Fatalf("acked job: %+v", v)
	}
	if got, ok := st.Get(stolen[0].Key); !ok || string(got) != string(payload) {
		t.Fatalf("acked payload not in store: ok=%v got=%q", ok, got)
	}
	// Idempotent: a duplicate ack (or a different verdict) is a no-op.
	if err := e.ResolveStolen(stolen[0].ID, StateFailed, "dup", nil); err != nil {
		t.Fatal(err)
	}
	v, _ = e.Get(stolen[0].ID)
	if v.State != StateDone {
		t.Fatalf("duplicate ack changed state to %s", v.State)
	}
}

func TestResolveStolenRejectsNonTerminal(t *testing.T) {
	e, _, gate := blockedEngine(t, Config{}, 1)
	defer shutdownOK(t, e)
	defer close(gate)
	stolen := e.StealQueued("thief", 1)
	if err := e.ResolveStolen(stolen[0].ID, StateRunning, "", nil); err == nil {
		t.Fatal("ResolveStolen accepted a non-terminal state")
	}
	if err := e.ResolveStolen("job-999999", StateDone, "", nil); err == nil {
		t.Fatal("ResolveStolen accepted an unknown job")
	}
}

// TestReclaimThenLateAck: the thief goes silent, the victim reclaims
// (job back on the queue, interrupted, prev_node set) — then the ack
// arrives anyway. First terminal transition wins; the job ends exactly
// once.
func TestReclaimThenLateAck(t *testing.T) {
	e, _, gate := blockedEngine(t, Config{Obs: newObsForTest()}, 1)
	defer shutdownOK(t, e)
	defer close(gate)

	stolen := e.StealQueued("thief", 1)
	if n := e.ReclaimStolen(0); n != 1 {
		t.Fatalf("reclaimed %d jobs, want 1", n)
	}
	v, _ := e.Get(stolen[0].ID)
	if v.State != StateQueued || !v.Interrupted || v.PrevNode != "thief" || v.RemoteNode != "" {
		t.Fatalf("reclaimed job view: %+v", v)
	}
	// Late ack: the job is back on the heap (the single worker is still
	// blocked, so it cannot have started). The ack wins and removes it.
	payload := []byte(`{"v":"late"}`)
	if err := e.ResolveStolen(stolen[0].ID, StateDone, "", payload); err != nil {
		t.Fatal(err)
	}
	v, _ = e.Get(stolen[0].ID)
	if v.State != StateDone || string(v.Result) != string(payload) {
		t.Fatalf("late-acked job: %+v", v)
	}
	if e.Depth() != 0 {
		t.Fatalf("queue depth after late ack = %d, want 0", e.Depth())
	}
}

// TestReclaimRespectsMaxAge: a fresh handoff is not reclaimed.
func TestReclaimRespectsMaxAge(t *testing.T) {
	e, _, gate := blockedEngine(t, Config{}, 1)
	defer shutdownOK(t, e)
	defer close(gate)
	e.StealQueued("thief", 1)
	if n := e.ReclaimStolen(time.Hour); n != 0 {
		t.Fatalf("reclaimed %d fresh jobs, want 0", n)
	}
}

// TestStolenJournalReplay: a victim crash after the handoff re-enqueues
// the stolen job on replay (interrupted, thief recorded as prev_node) —
// the pre-crash process's ack channel died with it.
func TestStolenJournalReplay(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, queued, gate := blockedEngine(t, Config{Journal: jn, NodeID: "victim"}, 2)
	stolen := e.StealQueued("thief", 1)
	if len(stolen) != 1 {
		t.Fatalf("stole %d, want 1", len(stolen))
	}
	// Crash: close the journal under the engine, then discard the
	// engine. Post-crash appends (shutdown cancels) fail harmlessly.
	jn.Close()
	close(gate)
	shutdownOK(t, e)

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	reg, gate2 := fakeRegistry()
	close(gate2) // replayed blocker must not park the only worker
	e2 := New(Config{Registry: reg, Journal: jn2, Workers: 1, NodeID: "victim"})
	defer shutdownOK(t, e2)

	v, ok := e2.Get(stolen[0].ID)
	if !ok {
		t.Fatalf("stolen job %s missing after replay", stolen[0].ID)
	}
	waitState(t, e2, v.ID, StateDone)
	v, _ = e2.Get(v.ID)
	if !v.Interrupted || v.PrevNode != "thief" {
		t.Fatalf("replayed stolen job view: %+v", v)
	}
	// The other queued job replays and completes too.
	waitState(t, e2, queued[1].ID, StateDone)
}

// TestStartedRecordsCarryNode: replay after a crash attributes the
// interrupted job to the node that was running it (adoption
// accounting, satellite 6) while pre-cluster journals (no node field)
// still replay.
func TestStartedRecordsCarryNode(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg, gate := fakeRegistry()
	e := New(Config{Registry: reg, Journal: jn, Workers: 1, NodeID: "node-a"})
	v, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, v.ID, StateRunning)
	jn.Close() // crash point: job is journaled started on node-a
	close(gate)
	shutdownOK(t, e)

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	reg2, gate2 := fakeRegistry()
	e2 := New(Config{Registry: reg2, Journal: jn2, Workers: 1, NodeID: "node-b"})
	got, ok := e2.Get(v.ID)
	if !ok || !got.Interrupted || got.PrevNode != "node-a" {
		t.Fatalf("interrupted job after replay: ok=%v %+v", ok, got)
	}
	close(gate2)
	waitState(t, e2, v.ID, StateDone)
	shutdownOK(t, e2)
}

func TestDepthAndDrainRate(t *testing.T) {
	e, _, gate := blockedEngine(t, Config{}, 2)
	if e.Depth() != 2 {
		t.Fatalf("Depth = %d, want 2", e.Depth())
	}
	if r := e.DrainRate(); r != 0 {
		t.Fatalf("DrainRate with no completions = %v, want 0", r)
	}
	close(gate)
	waitStateAll(t, e)
	if r := e.DrainRate(); r <= 0 {
		t.Fatalf("DrainRate after completions = %v, want > 0", r)
	}
	shutdownOK(t, e)
}

func waitStateAll(t *testing.T, e *Engine) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, v := range e.List() {
			if !v.State.Terminal() {
				done = false
			}
		}
		if done {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("jobs never all finished")
}

// TestShutdownCancelsStolen: a draining victim can no longer accept
// acks, so outstanding handoffs resolve to canceled rather than
// dangling forever.
func TestShutdownCancelsStolen(t *testing.T) {
	e, _, gate := blockedEngine(t, Config{}, 1)
	stolen := e.StealQueued("thief", 1)
	close(gate) // release the worker so the drain completes
	shutdownOK(t, e)
	v, _ := e.Get(stolen[0].ID)
	if v.State != StateCanceled {
		t.Fatalf("stolen job after shutdown: %+v", v)
	}
}
