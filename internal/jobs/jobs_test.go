package jobs

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/registry"
	"repro/internal/store"
)

type fakeResult struct {
	V string `json:"v"`
}

func (f fakeResult) Human() string { return f.V }

// fakeRegistry builds a registry of controllable experiments:
//   - "echo":  returns its parameter instantly
//   - "block": parks on the returned gate until released (or ctx ends)
//   - "panic": panics
//   - "sleep": sleeps ~50ms then returns
func fakeRegistry() (*registry.Registry, chan struct{}) {
	gate := make(chan struct{})
	r := registry.New()
	r.Register(registry.Experiment{
		Name:   "echo",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 1}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			return fakeResult{V: fmt.Sprintf("echo-%d", rc.Values.Int("n"))}, nil
		},
	})
	r.Register(registry.Experiment{
		Name:   "block",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			select {
			case <-gate:
				return fakeResult{V: "unblocked"}, nil
			case <-rc.Ctx.Done():
				return nil, rc.Ctx.Err()
			}
		},
	})
	r.Register(registry.Experiment{
		Name:   "panic",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			panic("deliberate test panic")
		},
	})
	r.Register(registry.Experiment{
		Name:   "sleep",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			time.Sleep(50 * time.Millisecond)
			return fakeResult{V: "slept"}, nil
		},
	})
	return r, gate
}

func shutdownOK(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestCacheHitByteIdentical is the acceptance criterion end to end with
// a real experiment: submitting the same (experiment, config, seed)
// twice yields byte-identical JSON, the second answered from the cache,
// with the store's hit counter advancing.
func TestCacheHitByteIdentical(t *testing.T) {
	st, err := store.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Store: st, Workers: 2})
	defer shutdownOK(t, e)

	req := Request{Experiment: "fig2", Params: map[string]any{"iters": 2}, Seed: 7}
	v1, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if v1.FromCache {
		t.Fatal("first submission claimed a cache hit")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v1, err = e.Wait(ctx, v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v1.State != StateDone || len(v1.Result) == 0 {
		t.Fatalf("first job: %+v", v1)
	}

	before := st.Stats().Hits
	v2, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.FromCache || v2.State != StateDone {
		t.Fatalf("second submission not served from cache: %+v", v2)
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatalf("cache returned different bytes:\n%s\n%s", v1.Result, v2.Result)
	}
	if v1.Key != v2.Key {
		t.Fatalf("keys differ: %s vs %s", v1.Key, v2.Key)
	}
	if after := st.Stats().Hits; after != before+1 {
		t.Fatalf("hit counter %d -> %d, want +1", before, after)
	}

	// A different seed is a different cell.
	v3, err := e.Submit(Request{Experiment: "fig2", Params: map[string]any{"iters": 2}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v3.FromCache {
		t.Fatal("different seed hit the cache")
	}
	if _, err := e.Wait(ctx, v3.ID); err != nil {
		t.Fatal(err)
	}
}

// TestWorkersBounded proves the Workers bound: with 2 workers and 6
// blocking jobs, at most 2 run concurrently and goroutine growth stays
// small (run under -race in CI).
func TestWorkersBounded(t *testing.T) {
	reg, gate := fakeRegistry()
	before := runtime.NumGoroutine()
	e := New(Config{Registry: reg, Workers: 2})

	var ids []string
	for i := 0; i < 6; i++ {
		v, err := e.Submit(Request{Experiment: "block", Params: map[string]any{"n": i}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	// Wait for the workers to pick up work.
	deadline := time.Now().Add(5 * time.Second)
	for {
		running := 0
		for _, id := range ids {
			if v, _ := e.Get(id); v.State == StateRunning {
				running++
			}
		}
		if running == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 2 running jobs")
		}
		time.Sleep(time.Millisecond)
	}
	running, queued := 0, 0
	for _, id := range ids {
		switch v, _ := e.Get(id); v.State {
		case StateRunning:
			running++
		case StateQueued:
			queued++
		}
	}
	if running != 2 || queued != 4 {
		t.Fatalf("running=%d queued=%d, want 2/4", running, queued)
	}
	// Engine adds exactly: 2 pool workers (+ a small constant for the
	// test's own runtime noise).
	if g := runtime.NumGoroutine(); g > before+2+4 {
		t.Fatalf("goroutines grew %d -> %d with Workers=2", before, g)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range ids {
		if v, err := e.Wait(ctx, id); err != nil || v.State != StateDone {
			t.Fatalf("job %s: %v %+v", id, err, v)
		}
	}
	shutdownOK(t, e)
}

// TestPanicIsolatedToJob: a panicking experiment fails its own job; the
// worker survives and runs the next job.
func TestPanicIsolatedToJob(t *testing.T) {
	reg, _ := fakeRegistry()
	e := New(Config{Registry: reg, Workers: 1})
	defer shutdownOK(t, e)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	vp, err := e.Submit(Request{Experiment: "panic"})
	if err != nil {
		t.Fatal(err)
	}
	vp, err = e.Wait(ctx, vp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vp.State != StateFailed || vp.Error == "" {
		t.Fatalf("panicking job: %+v", vp)
	}

	ve, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 9}})
	if err != nil {
		t.Fatal(err)
	}
	ve, err = e.Wait(ctx, ve.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ve.State != StateDone || string(ve.Result) != `{"v":"echo-9"}` {
		t.Fatalf("job after panic: %+v", ve)
	}
}

// TestPriorityFIFO: with one busy worker, queued jobs drain highest
// priority first, FIFO within a band.
func TestPriorityFIFO(t *testing.T) {
	reg, gate := fakeRegistry()

	var mu sync.Mutex
	var order []int
	reg.Register(registry.Experiment{
		Name:   "record",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			mu.Lock()
			order = append(order, rc.Values.Int("n"))
			mu.Unlock()
			return fakeResult{V: "ok"}, nil
		},
	})
	e := New(Config{Registry: reg, Workers: 1})
	defer shutdownOK(t, e)

	// Occupy the single worker so submissions below truly queue.
	blocker, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, blocker.ID, StateRunning)

	var ids []string
	submit := func(n, prio int) {
		v, err := e.Submit(Request{Experiment: "record", Params: map[string]any{"n": n}, Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	submit(1, 0)
	submit(2, 5)
	submit(3, 0)
	submit(4, 5)
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range ids {
		if _, err := e.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []int{2, 4, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
}

// TestShutdownDrainsInFlight: a running job finishes during Shutdown;
// queued jobs are canceled; later submissions are rejected.
func TestShutdownDrainsInFlight(t *testing.T) {
	reg, _ := fakeRegistry()
	e := New(Config{Registry: reg, Workers: 1})

	running, err := e.Submit(Request{Experiment: "sleep"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, StateRunning)
	queued, err := e.Submit(Request{Experiment: "echo"})
	if err != nil {
		t.Fatal(err)
	}

	shutdownOK(t, e)

	if v, _ := e.Get(running.ID); v.State != StateDone {
		t.Fatalf("in-flight job not drained: %+v", v)
	}
	if v, _ := e.Get(queued.ID); v.State != StateCanceled {
		t.Fatalf("queued job not canceled: %+v", v)
	}
	if _, err := e.Submit(Request{Experiment: "echo"}); err != ErrShutdown {
		t.Fatalf("post-shutdown Submit err = %v", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	reg, gate := fakeRegistry()
	e := New(Config{Registry: reg, Workers: 1})

	run1, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, run1.ID, StateRunning)
	q1, err := e.Submit(Request{Experiment: "echo"})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job: immediate.
	if v, err := e.Cancel(q1.ID); err != nil || v.State != StateCanceled {
		t.Fatalf("cancel queued: %v %+v", err, v)
	}
	// Cancel the running job: cooperative via ctx.
	if _, err := e.Cancel(run1.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err := e.Wait(ctx, run1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCanceled {
		t.Fatalf("running job after cancel: %+v", v)
	}
	close(gate)
	shutdownOK(t, e)
}

func TestQueueFullAndUnknownExperiment(t *testing.T) {
	reg, gate := fakeRegistry()
	e := New(Config{Registry: reg, Workers: 1, QueueDepth: 2})
	defer func() { close(gate); shutdownOK(t, e) }()

	if _, err := e.Submit(Request{Experiment: "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"bogus": 1}}); err == nil {
		t.Fatal("bad params accepted")
	}

	b, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, b.ID, StateRunning)
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(Request{Experiment: "block", Params: map[string]any{"n": i + 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Submit(Request{Experiment: "block", Params: map[string]any{"n": 9}}); err != ErrQueueFull {
		t.Fatalf("overfull Submit err = %v, want ErrQueueFull", err)
	}
}

// TestDiskCacheAcrossEngineRestart: an engine over a disk-tier store
// recomputes nothing after a "crash" (new engine + new store, same dir).
func TestDiskCacheAcrossEngineRestart(t *testing.T) {
	dir := t.TempDir()
	req := Request{Experiment: "fig2", Params: map[string]any{"iters": 2}, Seed: 3}

	st1, err := store.New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Config{Store: st1, Workers: 1})
	v1, err := e1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v1, err = e1.Wait(ctx, v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	shutdownOK(t, e1)

	st2, err := store.New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Config{Store: st2, Workers: 1})
	defer shutdownOK(t, e2)
	v2, err := e2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.FromCache {
		t.Fatal("restarted engine recomputed a disk-cached cell")
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatal("disk-cached bytes differ from the cold run")
	}
	if st2.Stats().DiskHits != 1 {
		t.Fatalf("stats %+v", st2.Stats())
	}
}

func waitState(t *testing.T, e *Engine, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := e.Get(id); ok && v.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	v, _ := e.Get(id)
	t.Fatalf("job %s never reached %s (now %s)", id, want, v.State)
}
