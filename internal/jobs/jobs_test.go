package jobs

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/store"
)

type fakeResult struct {
	V string `json:"v"`
}

func (f fakeResult) Human() string { return f.V }

// fakeRegistry builds a registry of controllable experiments:
//   - "echo":  returns its parameter instantly
//   - "block": parks on the returned gate until released (or ctx ends)
//   - "panic": panics
//   - "sleep": sleeps ~50ms then returns
func fakeRegistry() (*registry.Registry, chan struct{}) {
	gate := make(chan struct{})
	r := registry.New()
	r.Register(registry.Experiment{
		Name:   "echo",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 1}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			return fakeResult{V: fmt.Sprintf("echo-%d", rc.Values.Int("n"))}, nil
		},
	})
	r.Register(registry.Experiment{
		Name:   "block",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			select {
			case <-gate:
				return fakeResult{V: "unblocked"}, nil
			case <-rc.Ctx.Done():
				return nil, rc.Ctx.Err()
			}
		},
	})
	r.Register(registry.Experiment{
		Name:   "panic",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			panic("deliberate test panic")
		},
	})
	r.Register(registry.Experiment{
		Name:   "sleep",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			time.Sleep(50 * time.Millisecond)
			return fakeResult{V: "slept"}, nil
		},
	})
	return r, gate
}

func shutdownOK(t *testing.T, e *Engine) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := e.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// TestCacheHitByteIdentical is the acceptance criterion end to end with
// a real experiment: submitting the same (experiment, config, seed)
// twice yields byte-identical JSON, the second answered from the cache,
// with the store's hit counter advancing.
func TestCacheHitByteIdentical(t *testing.T) {
	st, err := store.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Store: st, Workers: 2})
	defer shutdownOK(t, e)

	req := Request{Experiment: "fig2", Params: map[string]any{"iters": 2}, Seed: 7}
	v1, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if v1.FromCache {
		t.Fatal("first submission claimed a cache hit")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v1, err = e.Wait(ctx, v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v1.State != StateDone || len(v1.Result) == 0 {
		t.Fatalf("first job: %+v", v1)
	}

	before := st.Stats().Hits
	v2, err := e.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.FromCache || v2.State != StateDone {
		t.Fatalf("second submission not served from cache: %+v", v2)
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatalf("cache returned different bytes:\n%s\n%s", v1.Result, v2.Result)
	}
	if v1.Key != v2.Key {
		t.Fatalf("keys differ: %s vs %s", v1.Key, v2.Key)
	}
	if after := st.Stats().Hits; after != before+1 {
		t.Fatalf("hit counter %d -> %d, want +1", before, after)
	}

	// A different seed is a different cell.
	v3, err := e.Submit(Request{Experiment: "fig2", Params: map[string]any{"iters": 2}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if v3.FromCache {
		t.Fatal("different seed hit the cache")
	}
	if _, err := e.Wait(ctx, v3.ID); err != nil {
		t.Fatal(err)
	}
}

// TestBackendSeparatesCacheKeys: the backend parameter is part of the
// canonical config, so the same (experiment, params, seed) on
// intel-skylake and arm occupy distinct store cells — results from one
// microarchitecture model can never be served for another — while
// resubmitting the same backend is an ordinary cache hit.
func TestBackendSeparatesCacheKeys(t *testing.T) {
	st, err := store.New(16, "")
	if err != nil {
		t.Fatal(err)
	}
	e := New(Config{Store: st, Workers: 2})
	defer shutdownOK(t, e)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	run := func(backend string) View {
		t.Helper()
		v, err := e.Submit(Request{Experiment: "fig2",
			Params: map[string]any{"iters": 2, "backend": backend}, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if !v.FromCache {
			if v, err = e.Wait(ctx, v.ID); err != nil {
				t.Fatal(err)
			}
		}
		if v.State != StateDone || len(v.Result) == 0 {
			t.Fatalf("backend=%s job: %+v", backend, v)
		}
		return v
	}

	sky := run("intel-skylake")
	arm := run("arm")
	if sky.Key == arm.Key {
		t.Fatalf("intel-skylake and arm share store key %s", sky.Key)
	}
	if bytes.Equal(sky.Result, arm.Result) {
		t.Fatal("intel-skylake and arm produced identical result bytes")
	}
	again := run("arm")
	if !again.FromCache || again.Key != arm.Key {
		t.Fatalf("arm resubmit not a cache hit: %+v", again)
	}
	if !bytes.Equal(again.Result, arm.Result) {
		t.Fatal("arm cache hit returned different bytes")
	}

	// An unknown backend is rejected at submit with the known names.
	_, err = e.Submit(Request{Experiment: "fig2",
		Params: map[string]any{"iters": 2, "backend": "vax"}, Seed: 7})
	if err == nil || !strings.Contains(err.Error(), "intel-skylake") {
		t.Fatalf("unknown backend error %v, want the backend list", err)
	}
}

// TestWorkersBounded proves the Workers bound: with 2 workers and 6
// blocking jobs, at most 2 run concurrently and goroutine growth stays
// small (run under -race in CI).
func TestWorkersBounded(t *testing.T) {
	reg, gate := fakeRegistry()
	before := runtime.NumGoroutine()
	e := New(Config{Registry: reg, Workers: 2})

	var ids []string
	for i := 0; i < 6; i++ {
		v, err := e.Submit(Request{Experiment: "block", Params: map[string]any{"n": i}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	// Wait for the workers to pick up work.
	deadline := time.Now().Add(5 * time.Second)
	for {
		running := 0
		for _, id := range ids {
			if v, _ := e.Get(id); v.State == StateRunning {
				running++
			}
		}
		if running == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never reached 2 running jobs")
		}
		time.Sleep(time.Millisecond)
	}
	running, queued := 0, 0
	for _, id := range ids {
		switch v, _ := e.Get(id); v.State {
		case StateRunning:
			running++
		case StateQueued:
			queued++
		}
	}
	if running != 2 || queued != 4 {
		t.Fatalf("running=%d queued=%d, want 2/4", running, queued)
	}
	// Engine adds exactly: 2 pool workers (+ a small constant for the
	// test's own runtime noise).
	if g := runtime.NumGoroutine(); g > before+2+4 {
		t.Fatalf("goroutines grew %d -> %d with Workers=2", before, g)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range ids {
		if v, err := e.Wait(ctx, id); err != nil || v.State != StateDone {
			t.Fatalf("job %s: %v %+v", id, err, v)
		}
	}
	shutdownOK(t, e)
}

// TestPanicIsolatedToJob: a panicking experiment fails its own job; the
// worker survives and runs the next job.
func TestPanicIsolatedToJob(t *testing.T) {
	reg, _ := fakeRegistry()
	e := New(Config{Registry: reg, Workers: 1})
	defer shutdownOK(t, e)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	vp, err := e.Submit(Request{Experiment: "panic"})
	if err != nil {
		t.Fatal(err)
	}
	vp, err = e.Wait(ctx, vp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vp.State != StateFailed || vp.Error == "" {
		t.Fatalf("panicking job: %+v", vp)
	}

	ve, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 9}})
	if err != nil {
		t.Fatal(err)
	}
	ve, err = e.Wait(ctx, ve.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ve.State != StateDone || string(ve.Result) != `{"v":"echo-9"}` {
		t.Fatalf("job after panic: %+v", ve)
	}
}

// TestPriorityFIFO: with one busy worker, queued jobs drain highest
// priority first, FIFO within a band.
func TestPriorityFIFO(t *testing.T) {
	reg, gate := fakeRegistry()

	var mu sync.Mutex
	var order []int
	reg.Register(registry.Experiment{
		Name:   "record",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			mu.Lock()
			order = append(order, rc.Values.Int("n"))
			mu.Unlock()
			return fakeResult{V: "ok"}, nil
		},
	})
	e := New(Config{Registry: reg, Workers: 1})
	defer shutdownOK(t, e)

	// Occupy the single worker so submissions below truly queue.
	blocker, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, blocker.ID, StateRunning)

	var ids []string
	submit := func(n, prio int) {
		v, err := e.Submit(Request{Experiment: "record", Params: map[string]any{"n": n}, Priority: prio})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, v.ID)
	}
	submit(1, 0)
	submit(2, 5)
	submit(3, 0)
	submit(4, 5)
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range ids {
		if _, err := e.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []int{2, 4, 1, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("drain order %v, want %v", order, want)
		}
	}
}

// TestShutdownDrainsInFlight: a running job finishes during Shutdown;
// queued jobs are canceled; later submissions are rejected.
func TestShutdownDrainsInFlight(t *testing.T) {
	reg, _ := fakeRegistry()
	e := New(Config{Registry: reg, Workers: 1})

	running, err := e.Submit(Request{Experiment: "sleep"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, running.ID, StateRunning)
	queued, err := e.Submit(Request{Experiment: "echo"})
	if err != nil {
		t.Fatal(err)
	}

	shutdownOK(t, e)

	if v, _ := e.Get(running.ID); v.State != StateDone {
		t.Fatalf("in-flight job not drained: %+v", v)
	}
	if v, _ := e.Get(queued.ID); v.State != StateCanceled {
		t.Fatalf("queued job not canceled: %+v", v)
	}
	if _, err := e.Submit(Request{Experiment: "echo"}); err != ErrShutdown {
		t.Fatalf("post-shutdown Submit err = %v", err)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	reg, gate := fakeRegistry()
	e := New(Config{Registry: reg, Workers: 1})

	run1, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, run1.ID, StateRunning)
	q1, err := e.Submit(Request{Experiment: "echo"})
	if err != nil {
		t.Fatal(err)
	}

	// Cancel the queued job: immediate.
	if v, err := e.Cancel(q1.ID); err != nil || v.State != StateCanceled {
		t.Fatalf("cancel queued: %v %+v", err, v)
	}
	// Cancel the running job: cooperative via ctx.
	if _, err := e.Cancel(run1.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err := e.Wait(ctx, run1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateCanceled {
		t.Fatalf("running job after cancel: %+v", v)
	}
	close(gate)
	shutdownOK(t, e)
}

func TestQueueFullAndUnknownExperiment(t *testing.T) {
	reg, gate := fakeRegistry()
	e := New(Config{Registry: reg, Workers: 1, QueueDepth: 2})
	defer func() { close(gate); shutdownOK(t, e) }()

	if _, err := e.Submit(Request{Experiment: "nope"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"bogus": 1}}); err == nil {
		t.Fatal("bad params accepted")
	}

	b, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, b.ID, StateRunning)
	for i := 0; i < 2; i++ {
		if _, err := e.Submit(Request{Experiment: "block", Params: map[string]any{"n": i + 1}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Submit(Request{Experiment: "block", Params: map[string]any{"n": 9}}); err != ErrQueueFull {
		t.Fatalf("overfull Submit err = %v, want ErrQueueFull", err)
	}
}

// TestDiskCacheAcrossEngineRestart: an engine over a disk-tier store
// recomputes nothing after a "crash" (new engine + new store, same dir).
func TestDiskCacheAcrossEngineRestart(t *testing.T) {
	dir := t.TempDir()
	req := Request{Experiment: "fig2", Params: map[string]any{"iters": 2}, Seed: 3}

	st1, err := store.New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Config{Store: st1, Workers: 1})
	v1, err := e1.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	v1, err = e1.Wait(ctx, v1.ID)
	if err != nil {
		t.Fatal(err)
	}
	shutdownOK(t, e1)

	st2, err := store.New(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Config{Store: st2, Workers: 1})
	defer shutdownOK(t, e2)
	v2, err := e2.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.FromCache {
		t.Fatal("restarted engine recomputed a disk-cached cell")
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatal("disk-cached bytes differ from the cold run")
	}
	if st2.Stats().DiskHits != 1 {
		t.Fatalf("stats %+v", st2.Stats())
	}
}

// TestDeadlineTimesOutCooperative: a job over its deadline whose
// experiment honors ctx transitions to timed_out and frees the worker.
func TestDeadlineTimesOutCooperative(t *testing.T) {
	reg, gate := fakeRegistry()
	defer close(gate)
	e := New(Config{Registry: reg, Workers: 1})
	defer shutdownOK(t, e)

	v, err := e.Submit(Request{Experiment: "block", DeadlineMS: 30})
	if err != nil {
		t.Fatal(err)
	}
	if v.DeadlineMS != 30 {
		t.Fatalf("view deadline %d, want 30", v.DeadlineMS)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err = e.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateTimedOut {
		t.Fatalf("over-deadline job: %+v", v)
	}
	// The worker is free: the next job completes.
	ve, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 1}})
	if err != nil {
		t.Fatal(err)
	}
	if ve, err = e.Wait(ctx, ve.ID); err != nil || ve.State != StateDone {
		t.Fatalf("job after timeout: %v %+v", err, ve)
	}
}

// TestDeadlineAbandonsHungRun: an experiment that ignores cancellation
// is abandoned after the grace period — the job times out, the worker
// moves on, and the stray goroutine is tracked on jobs_stuck until it
// exits.
func TestDeadlineAbandonsHungRun(t *testing.T) {
	reg, _ := fakeRegistry()
	hung := make(chan struct{})
	reg.Register(registry.Experiment{
		Name:   "hang",
		Params: []registry.Param{{Name: "n", Kind: registry.Int, Default: 0}},
		Run: func(rc registry.RunContext) (registry.Result, error) {
			<-hung // deliberately ignores rc.Ctx
			return fakeResult{V: "late"}, nil
		},
	})
	om := newObsForTest()
	e := New(Config{Registry: reg, Workers: 1, AbandonGrace: 20 * time.Millisecond, Obs: om})

	v, err := e.Submit(Request{Experiment: "hang", DeadlineMS: 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	v, err = e.Wait(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateTimedOut {
		t.Fatalf("abandoned job state: %+v", v)
	}
	if v.Error == "" {
		t.Fatal("abandoned job carries no error")
	}
	if got := om.Counter("jobs_abandoned_total", "").Value(); got != 1 {
		t.Fatalf("jobs_abandoned_total = %d, want 1", got)
	}
	if got := om.Gauge("jobs_stuck", "").Value(); got != 1 {
		t.Fatalf("jobs_stuck = %d, want 1 while the run hangs", got)
	}
	// The worker moved on despite the hung goroutine.
	ve, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 2}})
	if err != nil {
		t.Fatal(err)
	}
	if ve, err = e.Wait(ctx, ve.ID); err != nil || ve.State != StateDone {
		t.Fatalf("job after abandon: %v %+v", err, ve)
	}
	// Release the hung run; the reaper clears jobs_stuck.
	close(hung)
	deadline := time.Now().Add(5 * time.Second)
	for om.Gauge("jobs_stuck", "").Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("jobs_stuck never returned to 0")
		}
		time.Sleep(time.Millisecond)
	}
	shutdownOK(t, e)
}

// TestOverloadShedsByBytes: the in-flight byte budget rejects
// submissions with ErrOverloaded, counts them on overload_shed_total,
// and admits again once a job terminates and releases its bytes.
func TestOverloadShedsByBytes(t *testing.T) {
	reg, gate := fakeRegistry()
	om := newObsForTest()
	// Budget for exactly one queued/running job.
	e := New(Config{Registry: reg, Workers: 1, MaxInflightBytes: jobOverhead + 64, Obs: om})
	defer func() { shutdownOK(t, e) }()

	b, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, b.ID, StateRunning)
	if _, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 3}}); err != ErrOverloaded {
		t.Fatalf("over-budget Submit err = %v, want ErrOverloaded", err)
	}
	if !Overloaded(ErrOverloaded) || !Overloaded(ErrQueueFull) || Overloaded(ErrShutdown) {
		t.Fatal("Overloaded misclassifies")
	}
	if got := om.Counter("overload_shed_total", "").Value(); got != 1 {
		t.Fatalf("overload_shed_total = %d, want 1", got)
	}
	close(gate)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := e.Wait(ctx, b.ID); err != nil {
		t.Fatal(err)
	}
	// Bytes released: admission works again.
	ve, err := e.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 4}})
	if err != nil {
		t.Fatalf("Submit after release: %v", err)
	}
	if ve, err = e.Wait(ctx, ve.ID); err != nil || ve.State != StateDone {
		t.Fatalf("post-release job: %v %+v", err, ve)
	}
}

// TestJournalRecoveryReenqueues: after a simulated crash (engine
// dropped without Shutdown, journal holds submitted/started records
// with no terminals), a fresh engine over the same journal re-enqueues
// everything — the job that was running comes back Interrupted — and
// drives every job to done with its original ID.
func TestJournalRecoveryReenqueues(t *testing.T) {
	dir := t.TempDir()
	jn1, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reg1, gate1 := fakeRegistry()
	e1 := New(Config{Registry: reg1, Journal: jn1, Workers: 1})

	running, err := e1.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e1, running.ID, StateRunning)
	queued, err := e1.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 7}})
	if err != nil {
		t.Fatal(err)
	}
	// Crash: no Shutdown, no terminal records. Close the journal so the
	// replay below sees exactly the pre-crash records; the leaked run
	// appends to a closed journal later, which only bumps the failure
	// counter.
	if err := jn1.Close(); err != nil {
		t.Fatal(err)
	}
	defer close(gate1) // let the leaked worker goroutine exit

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	reg2, gate2 := fakeRegistry()
	close(gate2) // block completes instantly in the recovered engine
	e2 := New(Config{Registry: reg2, Journal: jn2, Workers: 1})
	defer shutdownOK(t, e2)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	vr, err := e2.Wait(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vr.State != StateDone || !vr.Interrupted {
		t.Fatalf("running-at-crash job after replay: %+v", vr)
	}
	vq, err := e2.Wait(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if vq.State != StateDone || vq.Interrupted {
		t.Fatalf("queued-at-crash job after replay: %+v", vq)
	}
	if string(vq.Result) != `{"v":"echo-7"}` {
		t.Fatalf("replayed job recomputed wrong bytes: %s", vq.Result)
	}
	// Fresh submissions continue the ID sequence instead of colliding.
	v3, err := e2.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 8}})
	if err != nil {
		t.Fatal(err)
	}
	if v3.ID == running.ID || v3.ID == queued.ID {
		t.Fatalf("post-replay ID collides: %s", v3.ID)
	}
}

// TestJournalRecoveryServesTerminal: a cleanly finished job replays as
// done, its bytes re-served from the store without recomputation.
func TestJournalRecoveryServesTerminal(t *testing.T) {
	dir := t.TempDir()
	storeDir := t.TempDir()

	jn1, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st1, err := store.New(4, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	reg1, gate1 := fakeRegistry()
	close(gate1)
	e1 := New(Config{Registry: reg1, Journal: jn1, Store: st1, Workers: 1})
	v1, err := e1.Submit(Request{Experiment: "echo", Params: map[string]any{"n": 5}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if v1, err = e1.Wait(ctx, v1.ID); err != nil || v1.State != StateDone {
		t.Fatalf("first run: %v %+v", err, v1)
	}
	shutdownOK(t, e1)
	if err := jn1.Close(); err != nil {
		t.Fatal(err)
	}

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	st2, err := store.New(4, storeDir)
	if err != nil {
		t.Fatal(err)
	}
	reg2, gate2 := fakeRegistry()
	e2 := New(Config{Registry: reg2, Journal: jn2, Store: st2, Workers: 1})
	defer func() { close(gate2); shutdownOK(t, e2) }()

	v2, ok := e2.Get(v1.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", v1.ID)
	}
	if v2.State != StateDone {
		t.Fatalf("terminal job replayed as %s", v2.State)
	}
	if !bytes.Equal(v1.Result, v2.Result) {
		t.Fatalf("replayed bytes differ:\n%s\n%s", v1.Result, v2.Result)
	}
}

// TestCancelMidDrain: canceling a running job while Shutdown is
// draining moves it to canceled and lets the drain complete — the
// engine-level half of the daemon's DELETE-during-SIGTERM race.
func TestCancelMidDrain(t *testing.T) {
	reg, gate := fakeRegistry()
	defer close(gate)
	e := New(Config{Registry: reg, Workers: 1})

	v, err := e.Submit(Request{Experiment: "block"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, e, v.ID, StateRunning)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownErr <- e.Shutdown(ctx)
	}()
	// The drain is now waiting on the blocked job; cancel it mid-drain.
	time.Sleep(10 * time.Millisecond)
	if _, err := e.Cancel(v.ID); err != nil {
		t.Fatalf("Cancel during drain: %v", err)
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown after mid-drain cancel: %v", err)
	}
	if got, _ := e.Get(v.ID); got.State != StateCanceled {
		t.Fatalf("mid-drain-canceled job: %+v", got)
	}
}

func newObsForTest() *obs.Registry { return obs.NewRegistry() }

func waitState(t *testing.T, e *Engine, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := e.Get(id); ok && v.State == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	v, _ := e.Get(id)
	t.Fatalf("job %s never reached %s (now %s)", id, want, v.State)
}

// TestReplayMintsTraceIDForLegacyRecords is the backward-compat half
// of distributed tracing (PR 9, satellite 6): a journal written before
// trace IDs existed — its records carry no trace_id field — must
// replay cleanly, and every re-enqueued job is minted a fresh,
// distinct trace ID so its timeline endpoint works after the upgrade.
func TestReplayMintsTraceIDForLegacyRecords(t *testing.T) {
	dir := t.TempDir()
	jn, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Hand-write the legacy journal exactly as a pre-PR-9 binary
	// serialized it: submitted/started records, TraceID zero-valued.
	reg, gate := fakeRegistry()
	close(gate)
	exp, ok := reg.Get("echo")
	if !ok {
		t.Fatal("echo not registered")
	}
	values, err := exp.Resolve(map[string]any{"n": 3})
	if err != nil {
		t.Fatal(err)
	}
	canon, err := exp.CanonicalConfig(values)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"job-1", "job-2"} {
		rec := journal.Record{
			Type: journal.TypeSubmitted, JobID: id, Experiment: "echo",
			Config: canon, Seed: uint64(i), Time: time.Now(),
		}
		if err := jn.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.Append(journal.Record{Type: journal.TypeStarted, JobID: "job-1", Time: time.Now()}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	jn2, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn2.Close()
	reg2, gate2 := fakeRegistry()
	close(gate2)
	e := New(Config{Registry: reg2, Journal: jn2, Workers: 1, Tracing: true})

	seen := map[string]bool{}
	for _, id := range []string{"job-1", "job-2"} {
		waitState(t, e, id, StateDone)
		v, _ := e.Get(id)
		if v.TraceID == "" {
			t.Fatalf("legacy job %s replayed without a minted trace ID: %+v", id, v)
		}
		if seen[v.TraceID] {
			t.Fatalf("legacy jobs share trace ID %s", v.TraceID)
		}
		seen[v.TraceID] = true
		tr, ok := e.Trace(id)
		if !ok || tr.Len() == 0 {
			t.Fatalf("legacy job %s has no trace fragment after replay", id)
		}
	}
	// New trace IDs also land on the journal's post-replay records, so
	// the NEXT restart keeps the minted identity.
	shutdownOK(t, e)
	if err := jn2.Close(); err != nil {
		t.Fatal(err)
	}
	jn3, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jn3.Close()
	started := 0
	for _, rec := range jn3.Records() {
		if rec.Type == journal.TypeStarted && rec.TraceID != "" {
			started++
		}
	}
	if started == 0 {
		t.Fatal("no post-replay started record carries a trace ID")
	}
}
