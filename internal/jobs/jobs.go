// Package jobs is the bounded experiment job engine: a priority-FIFO
// queue drained by a persistent runner.Pool, fronted by the
// content-addressed result cache in internal/store and made durable by
// the write-ahead journal in internal/journal.
//
// Submit resolves the experiment's config against its registry schema,
// derives the cache key, and either answers instantly from the store
// (the job is born "done", FromCache=true) or enqueues. Workers pull
// the highest-priority oldest job; each run is panic-isolated — a
// panicking experiment fails only its own job, never a worker or the
// engine.
//
// Robustness machinery:
//
//   - Durability. With Config.Journal set, every lifecycle transition is
//     journaled (fsynced) before it is acknowledged. New replays the
//     journal: jobs that were terminal stay terminal (results re-served
//     from the store), jobs that were queued re-enqueue, and jobs that
//     were running at crash time are marked Interrupted and re-enqueue.
//     Replayed work is cheap and deterministic — results are content-
//     addressed, so a re-run produces bit-identical bytes.
//
//   - Deadlines. Each job runs under a context with a deadline (request
//     deadline_ms, else the experiment's registry default). An
//     over-budget job transitions to timed_out; one that ignores
//     cancellation past the abandon grace is abandoned — the job
//     finishes, the worker moves on, and the runaway goroutine is
//     surfaced on the jobs_stuck gauge until it returns. A watchdog
//     goroutine keeps the jobs_overdue gauge current.
//
//   - Admission control. Beyond the queue-depth bound, an in-flight
//     byte budget (canonical config plus fixed per-job overhead, for
//     every queued or running job) sheds load with ErrOverloaded before
//     memory does; both rejections increment overload_shed_total and
//     surface as HTTP 429 upstream.
//
// Shutdown stops intake, cancels everything still queued, and drains
// jobs already in flight.
package jobs

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/journal"
	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/runner"
	"repro/internal/store"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	StateTimedOut State = "timed_out"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateTimedOut
}

// Request is one job submission.
type Request struct {
	// Experiment is a registry name (see GET /v1/experiments).
	Experiment string `json:"experiment"`
	// Params overrides the experiment's schema defaults; unknown or
	// mistyped parameters reject the submission.
	Params map[string]any `json:"params"`
	// Seed is the experiment seed (0 = the repo-wide default 0xA11).
	Seed uint64 `json:"seed"`
	// Priority orders the queue: higher runs first; equal priorities
	// run in submission order (FIFO).
	Priority int `json:"priority"`
	// DeadlineMS is the job's run-time budget in milliseconds, measured
	// from the moment a worker starts it. 0 uses the experiment's
	// registry default; negative means no deadline.
	DeadlineMS int64 `json:"deadline_ms"`
	// TraceID joins this job to an existing distributed trace (set on
	// forwarded/stolen/adopted resubmissions, or by a client correlating
	// jobs). Empty mints a fresh ID at submission — the "first
	// submission" of the tentpole's trace-propagation story. Trace IDs
	// never enter cache keys or result bytes.
	TraceID string `json:"trace_id,omitempty"`
	// IdempotencyKey dedupes duplicate deliveries of the same
	// submission: a resubmission carrying a key the engine has already
	// accepted returns the original job's view instead of enqueueing a
	// second job. Cluster forwarding mints one per forwarded request so
	// a network-duplicated forward runs exactly once. Empty disables
	// deduplication (every submission is distinct).
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// View is an externally visible job snapshot (the daemon's JSON).
type View struct {
	ID         string          `json:"id"`
	Experiment string          `json:"experiment"`
	Config     registry.Values `json:"config"`
	Seed       uint64          `json:"seed"`
	Priority   int             `json:"priority"`
	DeadlineMS int64           `json:"deadline_ms,omitempty"`
	State      State           `json:"state"`
	Progress   float64         `json:"progress"`
	FromCache  bool            `json:"from_cache"`
	// Interrupted marks a job that was running when a previous process
	// crashed (or was stolen by a peer that went silent) and was
	// re-enqueued by journal replay or reclaim.
	Interrupted bool `json:"interrupted,omitempty"`
	// RemoteNode names the peer currently executing this job after a
	// steal; empty for locally queued/running jobs.
	RemoteNode string `json:"remote_node,omitempty"`
	// PrevNode names the node that last ran (or held) this job before it
	// was interrupted, stolen, or reclaimed — adoption accounting for
	// cluster failover. Empty in pre-cluster journals.
	PrevNode string `json:"prev_node,omitempty"`
	// TraceID names the distributed trace the job's timeline fragments
	// are recorded under, across every node the job touched.
	TraceID string          `json:"trace_id,omitempty"`
	Key     string          `json:"key"`
	Error       string          `json:"error,omitempty"`
	Result      json.RawMessage `json:"result,omitempty"`
	EnqueuedAt  time.Time       `json:"enqueued_at"`
	StartedAt   *time.Time      `json:"started_at,omitempty"`
	FinishedAt  *time.Time      `json:"finished_at,omitempty"`
}

// job is the engine-internal record; every mutable field is guarded by
// the engine mutex.
type job struct {
	id          string
	seq         uint64
	exp         *registry.Experiment
	values      registry.Values
	canon       []byte // canonical config JSON (journaled identity)
	seed        uint64
	priority    int
	deadline    time.Duration // 0 = none
	cost        int64         // admission-control bytes while queued/running
	key         string
	state       State
	progress    float64
	fromCache   bool
	interrupted bool
	remote      string    // peer executing this job after a steal ("" = local)
	stolenAt    time.Time // when the job was handed out (reclaim clock)
	prevNode    string    // node that last ran/held the job before interruption
	errMsg      string
	result      []byte
	enqueuedAt  time.Time
	startedAt   time.Time
	finishedAt  time.Time
	cancel      context.CancelFunc
	done        chan struct{} // closed on any terminal state
	heapIdx     int           // -1 when not queued
	traceID     string        // distributed trace ID (minted at first submission)
	trace       *obs.Trace    // non-nil when Config.Tracing, for jobs that run
}

// Config configures an Engine.
type Config struct {
	// Registry resolves experiment names; nil means the full default
	// registry (registry.Experiments()).
	Registry *registry.Registry
	// NodeID names this engine's node in a cluster; it is stamped on
	// started/interrupted journal records so replay (local or on an
	// adopting peer) can account which node ran each job. Empty for
	// single-node deployments — records then match the pre-cluster
	// format byte for byte.
	NodeID string
	// Store caches results; nil disables caching (every submission
	// computes).
	Store *store.Store
	// Journal, when non-nil, makes the engine durable: every lifecycle
	// transition is appended (and fsynced) to it, and New replays its
	// records to recover jobs from a previous process. The engine never
	// closes the journal; the owner does, after Shutdown.
	Journal *journal.Journal
	// Workers bounds concurrently running jobs (runner semantics:
	// <= 0 means GOMAXPROCS).
	Workers int
	// ExpWorkers is the internal/runner parallelism handed to each
	// job's experiment. The default 1 keeps total goroutine growth at
	// Workers; raise it when jobs are scarce and cores plentiful.
	ExpWorkers int
	// QueueDepth bounds queued-but-not-running jobs; submissions
	// beyond it fail with ErrQueueFull. <= 0 means 1024.
	QueueDepth int
	// MaxInflightBytes bounds the admission-control byte account (the
	// canonical config plus a fixed overhead for every queued or
	// running job); submissions beyond it fail with ErrOverloaded.
	// <= 0 means 256 MiB.
	MaxInflightBytes int64
	// AbandonGrace is how long after cancellation/deadline the engine
	// waits for a run to exit cooperatively before abandoning it and
	// freeing the worker. <= 0 means 3s.
	AbandonGrace time.Duration
	// WatchdogInterval is how often the watchdog refreshes the
	// jobs_overdue gauge. <= 0 means 500ms.
	WatchdogInterval time.Duration
	// Obs, when non-nil, receives engine metrics (submissions,
	// completions by state, duration and queue-latency histograms,
	// queue depth, running gauge, shed/overdue/stuck instruments) and is
	// handed to every experiment run for simulator-level metrics. Nil
	// disables all of it.
	Obs *obs.Registry
	// Tracing, when true, records a per-job attack-pipeline trace
	// (retrievable via Engine.Trace) for every job that actually runs.
	// Traces live in a bounded TraceHub keyed by distributed trace ID,
	// so fragments of one cross-node job share a key on every node that
	// touched it (Engine.TraceHub exposes the hub to the cluster layer).
	Tracing bool
}

// jobOverhead is the fixed per-job byte charge for admission control:
// the engine-side footprint of a queued job beyond its config bytes.
const jobOverhead = 4096

// metrics is the engine's registered instrument set; all fields are
// nil-safe no-ops when Config.Obs was nil.
type metrics struct {
	submitted       *obs.Counter
	doneC           *obs.Counter
	failedC         *obs.Counter
	canceledC       *obs.Counter
	timedOutC       *obs.Counter
	shed            *obs.Counter
	abandoned       *obs.Counter
	replayed        *obs.Counter
	interrupted     *obs.Counter
	stolen          *obs.Counter
	reclaimed       *obs.Counter
	dupSubmits      *obs.Counter
	dupClaims       *obs.Counter
	journalFailures *obs.Counter
	duration        *obs.Histogram
	queueLatency    *obs.Histogram
	depth           *obs.Gauge
	running         *obs.Gauge
	inflightBytes   *obs.Gauge
	overdue         *obs.Gauge
	stuck           *obs.Gauge
}

func newMetrics(r *obs.Registry) metrics {
	completed := func(state State) *obs.Counter {
		return r.CounterL("jobs_completed_total", "jobs reaching a terminal state, by state",
			obs.Labels{"state": string(state)})
	}
	return metrics{
		submitted:       r.Counter("jobs_submitted_total", "job submissions accepted (including cache hits)"),
		doneC:           completed(StateDone),
		failedC:         completed(StateFailed),
		canceledC:       completed(StateCanceled),
		timedOutC:       completed(StateTimedOut),
		shed:            r.Counter("overload_shed_total", "submissions rejected by admission control (queue depth or byte budget)"),
		abandoned:       r.Counter("jobs_abandoned_total", "runs abandoned after ignoring cancellation past the grace period"),
		replayed:        r.Counter("jobs_replayed_total", "jobs reconstructed from the journal at startup"),
		interrupted:     r.Counter("jobs_interrupted_total", "jobs found running at crash time and re-enqueued"),
		stolen:          r.Counter("jobs_stolen_total", "queued jobs handed to peer nodes (work stealing)"),
		reclaimed:       r.Counter("jobs_reclaimed_total", "stolen jobs re-enqueued after the thief went silent"),
		dupSubmits:      r.Counter("jobs_idempotent_submit_dups_total", "submissions deduplicated by idempotency key (duplicate delivery)"),
		dupClaims:       r.Counter("jobs_steal_claim_dups_total", "steal claims answered from the claim memo (duplicate delivery)"),
		journalFailures: r.Counter("journal_append_failures_total", "journal appends that failed (job proceeds; durability degraded)"),
		duration:        r.Histogram("job_duration_seconds", "wall time of executed jobs, start to terminal state", obs.DefaultDurationBuckets()),
		queueLatency:    r.Histogram("job_queue_latency_seconds", "time jobs spent queued before a worker picked them up", obs.DefaultDurationBuckets()),
		depth:           r.Gauge("jobs_queue_depth", "jobs queued and not yet running"),
		running:         r.Gauge("jobs_running", "jobs currently executing"),
		inflightBytes:   r.Gauge("jobs_inflight_bytes", "admission-control byte account for queued and running jobs"),
		overdue:         r.Gauge("jobs_overdue", "running jobs past their deadline (watchdog)"),
		stuck:           r.Gauge("jobs_stuck", "abandoned runs whose goroutine has not exited yet"),
	}
}

func (m metrics) completed(state State) *obs.Counter {
	switch state {
	case StateDone:
		return m.doneC
	case StateFailed:
		return m.failedC
	case StateCanceled:
		return m.canceledC
	case StateTimedOut:
		return m.timedOutC
	}
	return nil
}

// ErrQueueFull rejects submissions when the queue is at capacity.
var ErrQueueFull = fmt.Errorf("jobs: queue full")

// ErrOverloaded rejects submissions when the in-flight byte budget is
// exhausted.
var ErrOverloaded = fmt.Errorf("jobs: engine overloaded")

// ErrShutdown rejects submissions after Shutdown began.
var ErrShutdown = fmt.Errorf("jobs: engine shutting down")

// Overloaded reports whether err is an admission-control rejection
// (retryable: HTTP 429 upstream).
func Overloaded(err error) bool {
	return errors.Is(err, ErrQueueFull) || errors.Is(err, ErrOverloaded)
}

// errDeadline is the cancellation cause distinguishing a deadline from
// a user cancel.
var errDeadline = errors.New("job deadline exceeded")

// RemoteGet is the cluster read-through seam: given a cache key it
// returns the result bytes from a peer's store (internal/cluster wires
// it to the ring owner's /v1/store endpoint). It must be safe for
// concurrent use and should fail fast when no peer can answer.
type RemoteGet func(key string) ([]byte, bool)

// Engine is the job service. Create with New, stop with Shutdown.
type Engine struct {
	reg          *registry.Registry
	store        *store.Store
	journal      *journal.Journal
	nodeID       string
	expWorkers   int
	queueCap     int
	maxBytes     int64
	abandonGrace time.Duration
	obs          *obs.Registry
	m            metrics
	tracing      bool
	hub          *obs.TraceHub // non-nil when tracing
	remoteGet    atomic.Pointer[RemoteGet]

	mu            sync.Mutex
	cond          *sync.Cond
	queue         jobHeap
	jobs          map[string]*job
	idem          map[string]string      // IdempotencyKey -> job ID (bounded FIFO)
	idemOrder     []string
	claims        map[string][]StolenJob // steal claim ID -> handed jobs (bounded FIFO)
	claimOrder    []string
	nextID        uint64
	nextSeq       uint64
	inflightBytes int64
	doneTimes     [128]time.Time // terminal-transition ring for DrainRate
	doneIdx       int
	closed        bool

	pool         *runner.Pool
	watchdogStop chan struct{}
	watchdogDone chan struct{}
}

// New starts an engine with cfg.Workers pull workers. With cfg.Journal
// set it first replays the journal, restoring terminal jobs (results
// from the store) and re-enqueueing everything else; jobs that were
// running at crash time come back Interrupted.
func New(cfg Config) *Engine {
	reg := cfg.Registry
	if reg == nil {
		reg = registry.Experiments()
	}
	if cfg.ExpWorkers <= 0 {
		cfg.ExpWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	if cfg.MaxInflightBytes <= 0 {
		cfg.MaxInflightBytes = 256 << 20
	}
	if cfg.AbandonGrace <= 0 {
		cfg.AbandonGrace = 3 * time.Second
	}
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = 500 * time.Millisecond
	}
	e := &Engine{
		reg:          reg,
		store:        cfg.Store,
		journal:      cfg.Journal,
		nodeID:       cfg.NodeID,
		expWorkers:   cfg.ExpWorkers,
		queueCap:     cfg.QueueDepth,
		maxBytes:     cfg.MaxInflightBytes,
		abandonGrace: cfg.AbandonGrace,
		obs:          cfg.Obs,
		m:            newMetrics(cfg.Obs),
		tracing:      cfg.Tracing,
		jobs:         make(map[string]*job),
		idem:         make(map[string]string),
		claims:       make(map[string][]StolenJob),
		watchdogStop: make(chan struct{}),
		watchdogDone: make(chan struct{}),
	}
	if cfg.Tracing {
		e.hub = obs.NewTraceHub(0)
	}
	e.cond = sync.NewCond(&e.mu)
	if e.journal != nil {
		e.replay(e.journal.Records())
	}
	e.pool = runner.StartPool(cfg.Workers, e.next)
	go e.watchdog(cfg.WatchdogInterval)
	return e
}

// replay reconstructs engine state from journal records (called before
// the pool starts, so no locking is needed yet). Terminal jobs whose
// results are still in the store stay terminal; a completed job whose
// result bytes were lost re-enqueues (recomputation is bit-identical);
// queued and running jobs re-enqueue, the running ones marked
// Interrupted and re-journaled as such.
func (e *Engine) replay(recs []journal.Record) {
	for _, rec := range recs {
		switch rec.Type {
		case journal.TypeSubmitted:
			if _, dup := e.jobs[rec.JobID]; dup {
				continue // duplicate submit record: first wins
			}
			e.nextSeq++
			j := &job{
				id:         rec.JobID,
				seq:        e.nextSeq,
				seed:       rec.Seed,
				priority:   rec.Priority,
				key:        rec.Key,
				canon:      append([]byte(nil), rec.Config...),
				enqueuedAt: rec.Time,
				state:      StateQueued,
				done:       make(chan struct{}),
				heapIdx:    -1,
				traceID:    rec.TraceID, // empty in pre-PR-9 journals
			}
			if rec.DeadlineMS > 0 {
				j.deadline = time.Duration(rec.DeadlineMS) * time.Millisecond
			}
			exp, ok := e.reg.Get(rec.Experiment)
			if !ok {
				j.state = StateFailed
				j.errMsg = fmt.Sprintf("replay: experiment %q no longer registered", rec.Experiment)
				close(j.done)
				e.jobs[j.id] = j
				continue
			}
			j.exp = exp
			var raw map[string]any
			values, err := exp.Defaults(), error(nil)
			if jerr := json.Unmarshal(rec.Config, &raw); jerr == nil {
				values, err = exp.Resolve(raw)
			} else {
				err = jerr
			}
			if err != nil {
				j.state = StateFailed
				j.errMsg = "replay: config no longer resolves: " + err.Error()
				close(j.done)
				e.jobs[j.id] = j
				continue
			}
			j.values = values
			e.jobs[j.id] = j
			if n, ok := parseID(rec.JobID); ok && n > e.nextID {
				e.nextID = n
			}
		case journal.TypeStarted:
			if j, ok := e.jobs[rec.JobID]; ok && !j.state.Terminal() {
				j.state = StateRunning
				j.prevNode = rec.Node // which node ran it (empty pre-cluster)
			}
		case journal.TypeInterrupted:
			if j, ok := e.jobs[rec.JobID]; ok && !j.state.Terminal() {
				j.interrupted = true
				j.state = StateQueued
				if rec.Node != "" {
					j.prevNode = rec.Node
				}
			}
		case journal.TypeStolen:
			if j, ok := e.jobs[rec.JobID]; ok && !j.state.Terminal() {
				// Handed to a peer before the crash: re-enqueue (the thief's
				// ack has nowhere to land on the pre-crash process) and keep
				// the thief on record. Recomputation is bit-identical, so a
				// double execution only costs time.
				j.state = StateQueued
				j.interrupted = true
				j.prevNode = rec.Node
			}
		case journal.TypeReclaimed:
			if j, ok := e.jobs[rec.JobID]; ok && !j.state.Terminal() {
				j.state = StateQueued
				j.interrupted = true
				j.prevNode = rec.Node
			}
		case journal.TypeCompleted, journal.TypeFailed, journal.TypeCanceled, journal.TypeTimedOut:
			j, ok := e.jobs[rec.JobID]
			if !ok || j.state.Terminal() {
				continue
			}
			j.state = stateForType(rec.Type)
			j.errMsg = rec.Error
			j.fromCache = rec.FromCache
			j.finishedAt = rec.Time
			if j.state == StateDone {
				j.progress = 1
			}
			close(j.done)
		}
	}

	// Second pass in seq order: resolve results for completed jobs and
	// re-enqueue everything non-terminal.
	ordered := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		ordered = append(ordered, j)
	}
	sort.Slice(ordered, func(i, k int) bool { return ordered[i].seq < ordered[k].seq })
	for _, j := range ordered {
		e.m.replayed.Inc()
		if j.state == StateDone {
			var cached []byte
			if e.store != nil {
				cached, _ = e.store.Get(j.key)
			}
			if cached != nil {
				j.result = cached
				continue
			}
			// Result bytes lost (store wiped or corrupt-evicted):
			// recompute. The cache key guarantees the re-run is
			// byte-identical, so this only trades time, never truth.
			j.state = StateQueued
			j.fromCache = false
			j.progress = 0
			j.done = make(chan struct{})
		}
		if j.state.Terminal() {
			continue
		}
		if j.state == StateRunning {
			// Running at crash time: mark interrupted, journal the fact —
			// including which node had been running it, so adoption
			// accounting survives the re-enqueue.
			j.interrupted = true
			j.state = StateQueued
			e.m.interrupted.Inc()
			e.appendJournal(journal.Record{Type: journal.TypeInterrupted, JobID: j.id, Key: j.key, Node: j.prevNode})
		}
		if j.traceID == "" {
			// Pre-PR-9 journal record (no trace_id field): mint a fresh
			// distributed trace ID for the re-enqueued job rather than
			// dropping it from tracing entirely.
			j.traceID = obs.NewTraceID()
		}
		if e.tracing {
			j.trace = e.hub.Fragment(j.traceID)
			j.trace.Event("job", "replayed", 0, map[string]any{"job": j.id, "node": e.nodeID, "interrupted": j.interrupted})
		}
		j.cost = int64(len(j.canon)) + jobOverhead
		e.inflightBytes += j.cost
		heap.Push(&e.queue, j)
	}
	e.m.depth.Set(int64(e.queue.Len()))
	e.m.inflightBytes.Set(e.inflightBytes)
}

func parseID(id string) (uint64, bool) {
	s, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	// Node-qualified IDs ("job-n1-17") carry the minting node between
	// the prefix and the sequence number; bare "job-17" is the
	// single-node (and pre-cluster journal) form.
	if i := strings.LastIndexByte(s, '-'); i >= 0 {
		s = s[i+1:]
	}
	n, err := strconv.ParseUint(s, 10, 64)
	return n, err == nil
}

// NodeForJobID extracts the minting node from a node-qualified job ID
// ("job-n2-17" -> "n2"). Returns "" for bare single-node IDs. Job IDs
// are per-node sequences, so the node segment is what makes an ID
// cluster-unique — and lets any node route a trace request for a job
// it has never seen to the node that owns it.
func NodeForJobID(id string) string {
	s, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return ""
	}
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return ""
	}
	return s[:i]
}

func stateForType(t journal.Type) State {
	switch t {
	case journal.TypeCompleted:
		return StateDone
	case journal.TypeFailed:
		return StateFailed
	case journal.TypeCanceled:
		return StateCanceled
	case journal.TypeTimedOut:
		return StateTimedOut
	}
	return StateQueued
}

func typeForState(s State) journal.Type {
	switch s {
	case StateDone:
		return journal.TypeCompleted
	case StateFailed:
		return journal.TypeFailed
	case StateCanceled:
		return journal.TypeCanceled
	case StateTimedOut:
		return journal.TypeTimedOut
	}
	return journal.TypeSubmitted
}

// appendJournal writes one record if a journal is attached. Append
// failures degrade durability, never availability: the job proceeds and
// the failure is counted.
func (e *Engine) appendJournal(rec journal.Record) {
	if e.journal == nil {
		return
	}
	if err := e.journal.Append(rec); err != nil {
		e.m.journalFailures.Inc()
	}
}

// effectiveDeadline resolves a submission's deadline: request value in
// ms (negative = none), else the experiment's registry default.
func effectiveDeadline(req Request, exp *registry.Experiment) time.Duration {
	switch {
	case req.DeadlineMS < 0:
		return 0
	case req.DeadlineMS > 0:
		return time.Duration(req.DeadlineMS) * time.Millisecond
	default:
		return exp.DefaultDeadline
	}
}

// Submit validates the request and either serves it from the cache or
// enqueues it. The returned view is a consistent snapshot; poll Get for
// progress.
func (e *Engine) Submit(req Request) (View, error) {
	exp, ok := e.reg.Get(req.Experiment)
	if !ok {
		return View{}, fmt.Errorf("jobs: unknown experiment %q", req.Experiment)
	}
	values, err := exp.Resolve(req.Params)
	if err != nil {
		return View{}, err
	}
	canon, err := exp.CanonicalConfig(values)
	if err != nil {
		return View{}, err
	}
	key := store.Key(exp.Name, canon, req.Seed, registry.CodeVersion)
	deadline := effectiveDeadline(req, exp)

	var cached []byte
	if e.store != nil {
		cached, _ = e.store.Get(key)
	}
	if cached == nil {
		// Peer read-through: the ring owner may already hold this cell.
		// A hit fills the local LRU so the next submission is a local hit.
		if fn := e.remoteGet.Load(); fn != nil {
			if val, ok := (*fn)(key); ok {
				cached = val
				if e.store != nil {
					e.store.Put(key, val)
				}
			}
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return View{}, ErrShutdown
	}
	if req.IdempotencyKey != "" {
		if id, ok := e.idem[req.IdempotencyKey]; ok {
			if j, ok := e.jobs[id]; ok {
				// Duplicate delivery of a submission already accepted:
				// return the original job, enqueue nothing.
				e.m.dupSubmits.Inc()
				return e.viewLocked(j), nil
			}
		}
	}
	cost := int64(len(canon)) + jobOverhead
	if cached == nil {
		// Admission control: shed before the queue or the byte account
		// can grow without bound. Cache hits bypass it — they consume no
		// queue slot and terminate immediately.
		if e.queue.Len() >= e.queueCap {
			e.m.shed.Inc()
			return View{}, ErrQueueFull
		}
		if e.inflightBytes+cost > e.maxBytes {
			e.m.shed.Inc()
			return View{}, ErrOverloaded
		}
	}
	e.nextID++
	e.nextSeq++
	// Node-qualified IDs ("job-n1-17") keep per-node sequences globally
	// unique in a cluster, which is what lets any node route a job's
	// trace request to its minting node. Single-node engines keep the
	// bare pre-cluster form.
	id := fmt.Sprintf("job-%d", e.nextID)
	if e.nodeID != "" {
		id = fmt.Sprintf("job-%s-%d", e.nodeID, e.nextID)
	}
	traceID := req.TraceID
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	j := &job{
		id:         id,
		seq:        e.nextSeq,
		exp:        exp,
		values:     values,
		canon:      canon,
		seed:       req.Seed,
		priority:   req.Priority,
		deadline:   deadline,
		key:        key,
		enqueuedAt: time.Now().UTC(),
		done:       make(chan struct{}),
		heapIdx:    -1,
		traceID:    traceID,
	}
	e.jobs[j.id] = j
	if req.IdempotencyKey != "" {
		e.idem[req.IdempotencyKey] = j.id
		e.idemOrder = append(e.idemOrder, req.IdempotencyKey)
		if len(e.idemOrder) > maxDedupMemo {
			delete(e.idem, e.idemOrder[0])
			e.idemOrder = e.idemOrder[1:]
		}
	}
	e.m.submitted.Inc()
	e.appendJournal(journal.Record{
		Type:       journal.TypeSubmitted,
		JobID:      j.id,
		Experiment: exp.Name,
		Config:     canon,
		Seed:       req.Seed,
		Priority:   req.Priority,
		DeadlineMS: int64(deadline / time.Millisecond),
		Key:        key,
		TraceID:    traceID,
	})
	if cached != nil {
		j.state = StateDone
		j.progress = 1
		j.fromCache = true
		j.result = cached
		j.finishedAt = j.enqueuedAt
		e.m.completed(StateDone).Inc()
		e.appendJournal(journal.Record{Type: journal.TypeCompleted, JobID: j.id, Key: j.key, FromCache: true})
		close(j.done)
		return e.viewLocked(j), nil
	}
	j.state = StateQueued
	j.cost = cost
	e.inflightBytes += cost
	e.m.inflightBytes.Set(e.inflightBytes)
	if e.tracing {
		j.trace = e.hub.Fragment(j.traceID)
		j.trace.Event("job", "submit", 0, map[string]any{"job": j.id, "experiment": exp.Name, "node": e.nodeID})
	}
	heap.Push(&e.queue, j)
	e.m.depth.Set(int64(e.queue.Len()))
	e.cond.Signal()
	return e.viewLocked(j), nil
}

// SetRemoteGet installs (or clears, with nil) the cluster read-through
// hook consulted on local cache misses during Submit. It exists as a
// setter because the cluster node and the engine reference each other:
// the engine is built first, the hook attached once the node exists.
func (e *Engine) SetRemoteGet(fn RemoteGet) {
	if fn == nil {
		e.remoteGet.Store(nil)
		return
	}
	e.remoteGet.Store(&fn)
}

// Depth reports the number of queued-but-not-running jobs.
func (e *Engine) Depth() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.queue.Len()
}

// DrainRate estimates recent completion throughput in jobs per second
// over a sliding 10-second window (terminal transitions of jobs that
// actually occupied the queue; cache hits don't count — they never
// consumed a slot). The daemon derives Retry-After for shed
// submissions from Depth()/DrainRate().
func (e *Engine) DrainRate() float64 {
	const window = 10 * time.Second
	cutoff := time.Now().UTC().Add(-window)
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, ts := range e.doneTimes {
		if !ts.IsZero() && ts.After(cutoff) {
			n++
		}
	}
	return float64(n) / window.Seconds()
}

// Get returns a job snapshot by ID.
func (e *Engine) Get(id string) (View, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return View{}, false
	}
	return e.viewLocked(j), true
}

// List returns snapshots of every job, sorted by submit sequence: the
// order is deterministic however the jobs map iterates.
func (e *Engine) List() []View {
	e.mu.Lock()
	defer e.mu.Unlock()
	all := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(i, k int) bool { return all[i].seq < all[k].seq })
	out := make([]View, 0, len(all))
	for _, j := range all {
		out = append(out, e.viewLocked(j))
	}
	return out
}

// Trace returns a job's recorded attack-pipeline trace. It exists only
// when the engine was built with Config.Tracing and the job actually
// ran (cache hits execute nothing). Reading a trace while its job is
// still running yields a consistent prefix.
func (e *Engine) Trace(id string) (*obs.Trace, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok || j.trace == nil {
		return nil, false
	}
	return j.trace, true
}

// TraceHub returns the engine's trace-fragment hub (nil when tracing
// is disabled, which the hub's nil-safe methods absorb). The cluster
// layer records hop spans into it and serves its fragments to peers.
func (e *Engine) TraceHub() *obs.TraceHub {
	return e.hub
}

// Wait blocks until the job reaches a terminal state (or the context
// expires), then returns its final snapshot.
func (e *Engine) Wait(ctx context.Context, id string) (View, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return View{}, fmt.Errorf("jobs: no job %q", id)
	}
	select {
	case <-j.done:
		v, _ := e.Get(id)
		return v, nil
	case <-ctx.Done():
		return View{}, ctx.Err()
	}
}

// Cancel cancels a queued job immediately; a running job gets a
// cooperative cancellation signal (its context is canceled) and keeps
// its final state when it returns. Canceling a terminal job is a no-op.
// Cancel is safe during Shutdown's drain: a mid-drain cancel moves the
// job to canceled and the drain completes normally.
func (e *Engine) Cancel(id string) (View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return View{}, fmt.Errorf("jobs: no job %q", id)
	}
	switch j.state {
	case StateQueued:
		if j.heapIdx >= 0 {
			heap.Remove(&e.queue, j.heapIdx)
			e.m.depth.Set(int64(e.queue.Len()))
		}
		e.finishLocked(j, StateCanceled, "canceled while queued", nil)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return e.viewLocked(j), nil
}

// StolenJob is the wire form of a queued job handed to a peer: enough
// to resubmit it remotely (the canonical config JSON round-trips
// through Resolve to the identical cache key) plus the victim-side ID
// the ack handshake references.
type StolenJob struct {
	ID         string          `json:"id"`
	Experiment string          `json:"experiment"`
	Config     json.RawMessage `json:"config"` // canonical config JSON
	Seed       uint64          `json:"seed"`
	Priority   int             `json:"priority"`
	DeadlineMS int64           `json:"deadline_ms"` // resolved: >0 ms, -1 none
	Key        string          `json:"key"`
	// TraceID carries the victim job's distributed trace through the
	// steal handshake so the thief's execution lands in the same
	// cross-node timeline.
	TraceID string `json:"trace_id,omitempty"`
}

// maxDedupMemo bounds the idempotency-key and steal-claim memos; the
// oldest entries are evicted FIFO. Duplicate deliveries arrive within
// a retry budget of the original, so a bounded window is sufficient.
const maxDedupMemo = 4096

// StealQueued pops up to max queued jobs off the queue and hands them
// to thief, with no duplicate-delivery protection. Prefer
// StealQueuedClaim for anything that crosses the network.
func (e *Engine) StealQueued(thief string, max int) []StolenJob {
	return e.StealQueuedClaim("", thief, max)
}

// StealQueuedClaim is StealQueued keyed by a thief-minted claim ID:
// the first delivery of a claim pops jobs off the queue; any duplicate
// delivery of the same claim (a network-level retry or duplication)
// returns the identical job set without stealing anything further —
// the handshake is idempotent on the wire. Each handoff is journaled
// (TypeStolen) before the job is returned, so a victim crash
// re-enqueues the job on replay rather than losing it. The jobs stay
// registered here — state queued, off the heap, RemoteNode set — until
// the thief acks via ResolveStolen or ReclaimStolen takes them back.
func (e *Engine) StealQueuedClaim(claimID, thief string, max int) []StolenJob {
	if thief == "" || max <= 0 {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	if claimID != "" {
		if jobs, ok := e.claims[claimID]; ok {
			e.m.dupClaims.Inc()
			return append([]StolenJob(nil), jobs...)
		}
	}
	var out []StolenJob
	for len(out) < max && e.queue.Len() > 0 {
		j := heap.Pop(&e.queue).(*job)
		j.remote = thief
		j.stolenAt = time.Now().UTC()
		e.m.stolen.Inc()
		e.appendJournal(journal.Record{Type: journal.TypeStolen, JobID: j.id, Key: j.key, Node: thief, TraceID: j.traceID})
		j.trace.Event("hop", "stolen", 0, map[string]any{"job": j.id, "from": e.nodeID, "to": thief})
		dl := int64(j.deadline / time.Millisecond)
		if j.deadline == 0 {
			dl = -1 // resolved "no deadline"; 0 would re-apply the registry default
		}
		out = append(out, StolenJob{
			ID:         j.id,
			Experiment: j.expName(),
			Config:     append(json.RawMessage(nil), j.canon...),
			Seed:       j.seed,
			Priority:   j.priority,
			DeadlineMS: dl,
			Key:        j.key,
			TraceID:    j.traceID,
		})
	}
	if claimID != "" {
		e.claims[claimID] = append([]StolenJob(nil), out...)
		e.claimOrder = append(e.claimOrder, claimID)
		if len(e.claimOrder) > maxDedupMemo {
			delete(e.claims, e.claimOrder[0])
			e.claimOrder = e.claimOrder[1:]
		}
	}
	e.m.depth.Set(int64(e.queue.Len()))
	return out
}

// ResolveStolen lands a thief's ack: the stolen job moves to the acked
// terminal state, a done payload is written through the store first so
// the terminal journal record never precedes its bytes (the same
// ordering local runs guarantee). Acking an already-terminal job is a
// no-op — the call is idempotent, which is what makes the handshake
// safe against reclaim races and duplicate delivery.
func (e *Engine) ResolveStolen(id string, state State, errMsg string, payload []byte) error {
	if !state.Terminal() {
		return fmt.Errorf("jobs: ResolveStolen with non-terminal state %q", state)
	}
	e.mu.Lock()
	j, ok := e.jobs[id]
	if !ok {
		e.mu.Unlock()
		return fmt.Errorf("jobs: no job %q", id)
	}
	if j.state.Terminal() {
		e.mu.Unlock()
		return nil
	}
	key := j.key
	e.mu.Unlock()

	if state == StateDone && payload != nil && e.store != nil {
		e.store.Put(key, payload)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if j.state.Terminal() {
		return nil
	}
	if j.heapIdx >= 0 {
		// Reclaimed back into the queue meanwhile: the ack wins — the
		// bytes are already computed.
		heap.Remove(&e.queue, j.heapIdx)
		e.m.depth.Set(int64(e.queue.Len()))
	}
	if j.state == StateRunning && j.cancel != nil {
		// Reclaimed and re-running locally: stop the duplicate run; its
		// late completion no-ops on the terminal guard.
		j.cancel()
	}
	e.finishLocked(j, state, errMsg, payload)
	return nil
}

// ReclaimStolen re-enqueues stolen jobs whose thief has been silent
// for at least maxAge: the thief died, or its ack is lost. The reclaim
// is journaled; a late ack after reclaim is resolved idempotently (the
// first terminal transition wins, and results are content-addressed so
// either path yields identical bytes). Returns how many jobs came back.
func (e *Engine) ReclaimStolen(maxAge time.Duration) int {
	now := time.Now().UTC()
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0
	}
	n := 0
	for _, j := range e.jobs {
		if j.remote == "" || j.state.Terminal() || j.heapIdx >= 0 || j.state == StateRunning {
			continue
		}
		if now.Sub(j.stolenAt) < maxAge {
			continue
		}
		j.prevNode = j.remote
		j.remote = ""
		j.interrupted = true
		e.m.reclaimed.Inc()
		e.appendJournal(journal.Record{Type: journal.TypeReclaimed, JobID: j.id, Key: j.key, Node: j.prevNode, TraceID: j.traceID})
		j.trace.Event("hop", "reclaimed", 0, map[string]any{"job": j.id, "node": e.nodeID, "thief": j.prevNode})
		heap.Push(&e.queue, j)
		n++
	}
	if n > 0 {
		e.m.depth.Set(int64(e.queue.Len()))
		e.cond.Broadcast()
	}
	return n
}

// Shutdown stops intake, cancels all queued jobs, asks running jobs to
// stop (cooperatively), and waits for the workers to drain in-flight
// work. It returns ctx.Err if the drain outlives the context. The
// journal (if any) stays open — close it after Shutdown returns.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		for e.queue.Len() > 0 {
			j := heap.Pop(&e.queue).(*job)
			e.finishLocked(j, StateCanceled, "engine shutdown", nil)
		}
		// Stolen jobs are off the heap but still non-terminal here; a
		// shutting-down victim can no longer accept their acks.
		for _, j := range e.jobs {
			if j.remote != "" && !j.state.Terminal() {
				e.finishLocked(j, StateCanceled, "engine shutdown", nil)
			}
		}
		e.m.depth.Set(0)
		e.cond.Broadcast()
		close(e.watchdogStop)
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.pool.Wait()
		<-e.watchdogDone
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// watchdog keeps the jobs_overdue gauge current: running jobs past
// their deadline that have not yet transitioned (still inside the
// cooperative-cancel or grace window).
func (e *Engine) watchdog(interval time.Duration) {
	defer close(e.watchdogDone)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-e.watchdogStop:
			return
		case <-ticker.C:
		}
		now := time.Now().UTC()
		overdue := int64(0)
		e.mu.Lock()
		for _, j := range e.jobs {
			if j.state == StateRunning && j.deadline > 0 && now.After(j.startedAt.Add(j.deadline)) {
				overdue++
			}
		}
		e.mu.Unlock()
		e.m.overdue.Set(overdue)
	}
}

// next is the runner.Pool pull source: block until a job is available
// or the engine closes.
func (e *Engine) next() (func(), bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.queue.Len() > 0 {
			j := heap.Pop(&e.queue).(*job)
			j.state = StateRunning
			j.startedAt = time.Now().UTC()
			base, cancelCause := context.WithCancelCause(context.Background())
			ctx := context.Context(base)
			stopTimer := context.CancelFunc(func() {})
			if j.deadline > 0 {
				ctx, stopTimer = context.WithDeadlineCause(base, j.startedAt.Add(j.deadline), errDeadline)
			}
			j.cancel = func() { cancelCause(context.Canceled) }
			cleanup := func() {
				stopTimer()
				cancelCause(nil)
			}
			e.m.depth.Set(int64(e.queue.Len()))
			e.m.running.Inc()
			e.m.queueLatency.Observe(j.startedAt.Sub(j.enqueuedAt).Seconds())
			e.appendJournal(journal.Record{Type: journal.TypeStarted, JobID: j.id, Key: j.key, Node: e.nodeID, TraceID: j.traceID})
			return func() { e.run(j, ctx, cleanup) }, true
		}
		if e.closed {
			return nil, false
		}
		e.cond.Wait()
	}
}

// outcome is what one experiment execution produced.
type outcome struct {
	payload []byte
	err     error
}

// run executes one job on a pool worker. The experiment itself runs on
// a private goroutine so that a run which ignores cancellation can be
// abandoned — the job transitions (timed_out or canceled), the worker
// moves on, and the runaway goroutine is surfaced via jobs_stuck until
// it exits. Panics in the experiment fail only this job.
func (e *Engine) run(j *job, ctx context.Context, cleanup func()) {
	defer cleanup()
	// The run span brackets this node's execution of the job in the
	// distributed timeline; hop spans (forward/steal/adopt) recorded by
	// the cluster layer connect run spans across nodes.
	span := j.trace.Begin("job", "run", 0, map[string]any{"job": j.id, "node": e.nodeID, "experiment": j.expName()})
	defer span.End()
	outc := make(chan outcome, 1)
	go func() { outc <- e.execute(j, ctx) }()

	select {
	case out := <-outc:
		e.complete(j, out, ctx)
	case <-ctx.Done():
		grace := time.NewTimer(e.abandonGrace)
		select {
		case out := <-outc:
			grace.Stop()
			e.complete(j, out, ctx)
		case <-grace.C:
			// Abandoned: the run ignored cancellation. Finish the job
			// now; account for the stray goroutine until it returns.
			e.m.abandoned.Inc()
			e.m.stuck.Inc()
			state, msg := terminalForCtx(ctx)
			msg = fmt.Sprintf("%s; run abandoned after ignoring cancellation for %v", msg, e.abandonGrace)
			e.mu.Lock()
			e.finishLocked(j, state, msg, nil)
			e.mu.Unlock()
			go func() {
				<-outc // late result discarded; store.Put (if any) already happened harmlessly
				e.m.stuck.Dec()
			}()
		}
	}
	e.m.running.Dec()
}

// execute runs the experiment, marshals its result and writes the
// store, returning the outcome. It never touches engine state.
func (e *Engine) execute(j *job, ctx context.Context) outcome {
	var (
		res registry.Result
		err error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("experiment panicked: %v", r)
			}
		}()
		res, err = j.exp.Run(registry.RunContext{
			Ctx:     ctx,
			Seed:    j.seed,
			Workers: e.expWorkers,
			Values:  j.values,
			Progress: func(frac float64) {
				e.mu.Lock()
				if !j.state.Terminal() && frac > j.progress && frac <= 1 {
					j.progress = frac
				}
				e.mu.Unlock()
			},
			Obs:   e.obs,
			Trace: j.trace,
		})
	}()
	if err != nil {
		return outcome{err: err}
	}
	payload, err := json.Marshal(res)
	if err != nil {
		return outcome{err: fmt.Errorf("marshal result: %w", err)}
	}
	if e.store != nil {
		// Store before the journal's terminal record (written by the
		// caller under the engine lock): a job journaled as completed
		// always has its bytes on disk first, so replay can re-serve it.
		if perr := e.store.Put(j.key, payload); perr != nil {
			// The result is still good; a failed disk write only costs
			// future cache hits.
			return outcome{payload: payload, err: nil}
		}
	}
	return outcome{payload: payload}
}

// terminalForCtx maps a done context to the job state it implies.
func terminalForCtx(ctx context.Context) (State, string) {
	if errors.Is(context.Cause(ctx), errDeadline) {
		return StateTimedOut, errDeadline.Error()
	}
	return StateCanceled, "canceled while running"
}

// complete moves a finished execution into its terminal state.
func (e *Engine) complete(j *job, out outcome, ctx context.Context) {
	state := StateDone
	msg := ""
	switch {
	case out.err != nil && ctx.Err() != nil:
		state, msg = terminalForCtx(ctx)
		msg += ": " + out.err.Error()
	case out.err != nil:
		state, msg = StateFailed, out.err.Error()
	}
	e.mu.Lock()
	e.finishLocked(j, state, msg, out.payload)
	e.mu.Unlock()
}

// finishLocked moves a job to a terminal state. Caller holds e.mu.
func (e *Engine) finishLocked(j *job, state State, msg string, payload []byte) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.errMsg = msg
	j.result = payload
	if state == StateDone {
		j.progress = 1
	}
	j.finishedAt = time.Now().UTC()
	if j.cost > 0 {
		e.inflightBytes -= j.cost
		j.cost = 0
		e.m.inflightBytes.Set(e.inflightBytes)
	}
	e.m.completed(state).Inc()
	if !j.startedAt.IsZero() {
		e.m.duration.Observe(j.finishedAt.Sub(j.startedAt).Seconds())
	}
	e.doneTimes[e.doneIdx%len(e.doneTimes)] = j.finishedAt
	e.doneIdx++
	e.appendJournal(journal.Record{Type: typeForState(state), JobID: j.id, Key: j.key, FromCache: j.fromCache, Error: msg, Node: j.remote})
	close(j.done)
}

func (e *Engine) viewLocked(j *job) View {
	v := View{
		ID:          j.id,
		Experiment:  j.expName(),
		Config:      j.values,
		Seed:        j.seed,
		Priority:    j.priority,
		DeadlineMS:  int64(j.deadline / time.Millisecond),
		State:       j.state,
		Progress:    j.progress,
		FromCache:   j.fromCache,
		Interrupted: j.interrupted,
		RemoteNode:  j.remote,
		PrevNode:    j.prevNode,
		TraceID:     j.traceID,
		Key:         j.key,
		Error:       j.errMsg,
		Result:      append(json.RawMessage(nil), j.result...),
		EnqueuedAt:  j.enqueuedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	return v
}

// expName tolerates replayed jobs whose experiment vanished from the
// registry (exp == nil, state failed).
func (j *job) expName() string {
	if j.exp == nil {
		return ""
	}
	return j.exp.Name
}

// jobHeap orders by priority descending, then seq ascending (FIFO
// within a priority band).
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].priority != h[k].priority {
		return h[i].priority > h[k].priority
	}
	return h[i].seq < h[k].seq
}
func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].heapIdx = i
	h[k].heapIdx = k
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	j := old[len(old)-1]
	old[len(old)-1] = nil
	j.heapIdx = -1
	*h = old[:len(old)-1]
	return j
}
