// Package jobs is the bounded experiment job engine: a priority-FIFO
// queue drained by a persistent runner.Pool, fronted by the
// content-addressed result cache in internal/store.
//
// Submit resolves the experiment's config against its registry schema,
// derives the cache key, and either answers instantly from the store
// (the job is born "done", FromCache=true) or enqueues. Workers pull
// the highest-priority oldest job; each run is panic-isolated — a
// panicking experiment fails only its own job, never a worker or the
// engine. Shutdown stops intake, cancels everything still queued, and
// drains jobs already in flight.
package jobs

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/registry"
	"repro/internal/runner"
	"repro/internal/store"
)

// State is a job's lifecycle phase.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Request is one job submission.
type Request struct {
	// Experiment is a registry name (see GET /v1/experiments).
	Experiment string `json:"experiment"`
	// Params overrides the experiment's schema defaults; unknown or
	// mistyped parameters reject the submission.
	Params map[string]any `json:"params"`
	// Seed is the experiment seed (0 = the repo-wide default 0xA11).
	Seed uint64 `json:"seed"`
	// Priority orders the queue: higher runs first; equal priorities
	// run in submission order (FIFO).
	Priority int `json:"priority"`
}

// View is an externally visible job snapshot (the daemon's JSON).
type View struct {
	ID         string          `json:"id"`
	Experiment string          `json:"experiment"`
	Config     registry.Values `json:"config"`
	Seed       uint64          `json:"seed"`
	Priority   int             `json:"priority"`
	State      State           `json:"state"`
	Progress   float64         `json:"progress"`
	FromCache  bool            `json:"from_cache"`
	Key        string          `json:"key"`
	Error      string          `json:"error,omitempty"`
	Result     json.RawMessage `json:"result,omitempty"`
	EnqueuedAt time.Time       `json:"enqueued_at"`
	StartedAt  *time.Time      `json:"started_at,omitempty"`
	FinishedAt *time.Time      `json:"finished_at,omitempty"`
}

// job is the engine-internal record; every mutable field is guarded by
// the engine mutex.
type job struct {
	id         string
	seq        uint64
	exp        *registry.Experiment
	values     registry.Values
	seed       uint64
	priority   int
	key        string
	state      State
	progress   float64
	fromCache  bool
	errMsg     string
	result     []byte
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
	cancel     context.CancelFunc
	done       chan struct{} // closed on any terminal state
	heapIdx    int           // -1 when not queued
	trace      *obs.Trace    // non-nil when Config.Tracing, for jobs that run
}

// Config configures an Engine.
type Config struct {
	// Registry resolves experiment names; nil means the full default
	// registry (registry.Experiments()).
	Registry *registry.Registry
	// Store caches results; nil disables caching (every submission
	// computes).
	Store *store.Store
	// Workers bounds concurrently running jobs (runner semantics:
	// <= 0 means GOMAXPROCS).
	Workers int
	// ExpWorkers is the internal/runner parallelism handed to each
	// job's experiment. The default 1 keeps total goroutine growth at
	// Workers; raise it when jobs are scarce and cores plentiful.
	ExpWorkers int
	// QueueDepth bounds queued-but-not-running jobs; submissions
	// beyond it fail with ErrQueueFull. <= 0 means 1024.
	QueueDepth int
	// Obs, when non-nil, receives engine metrics (submissions,
	// completions by state, duration and queue-latency histograms,
	// queue depth, running gauge) and is handed to every experiment run
	// for simulator-level metrics. Nil disables all of it.
	Obs *obs.Registry
	// Tracing, when true, records a per-job attack-pipeline trace
	// (retrievable via Engine.Trace) for every job that actually runs.
	Tracing bool
}

// metrics is the engine's registered instrument set; all fields are
// nil-safe no-ops when Config.Obs was nil.
type metrics struct {
	submitted    *obs.Counter
	doneC        *obs.Counter
	failedC      *obs.Counter
	canceledC    *obs.Counter
	duration     *obs.Histogram
	queueLatency *obs.Histogram
	depth        *obs.Gauge
	running      *obs.Gauge
}

func newMetrics(r *obs.Registry) metrics {
	completed := func(state State) *obs.Counter {
		return r.CounterL("jobs_completed_total", "jobs reaching a terminal state, by state",
			obs.Labels{"state": string(state)})
	}
	return metrics{
		submitted:    r.Counter("jobs_submitted_total", "job submissions accepted (including cache hits)"),
		doneC:        completed(StateDone),
		failedC:      completed(StateFailed),
		canceledC:    completed(StateCanceled),
		duration:     r.Histogram("job_duration_seconds", "wall time of executed jobs, start to terminal state", obs.DefaultDurationBuckets()),
		queueLatency: r.Histogram("job_queue_latency_seconds", "time jobs spent queued before a worker picked them up", obs.DefaultDurationBuckets()),
		depth:        r.Gauge("jobs_queue_depth", "jobs queued and not yet running"),
		running:      r.Gauge("jobs_running", "jobs currently executing"),
	}
}

func (m metrics) completed(state State) *obs.Counter {
	switch state {
	case StateDone:
		return m.doneC
	case StateFailed:
		return m.failedC
	case StateCanceled:
		return m.canceledC
	}
	return nil
}

// ErrQueueFull rejects submissions when the queue is at capacity.
var ErrQueueFull = fmt.Errorf("jobs: queue full")

// ErrShutdown rejects submissions after Shutdown began.
var ErrShutdown = fmt.Errorf("jobs: engine shutting down")

// Engine is the job service. Create with New, stop with Shutdown.
type Engine struct {
	reg        *registry.Registry
	store      *store.Store
	expWorkers int
	queueCap   int
	obs        *obs.Registry
	m          metrics
	tracing    bool

	mu      sync.Mutex
	cond    *sync.Cond
	queue   jobHeap
	jobs    map[string]*job
	nextID  uint64
	nextSeq uint64
	closed  bool

	pool *runner.Pool
}

// New starts an engine with cfg.Workers pull workers.
func New(cfg Config) *Engine {
	reg := cfg.Registry
	if reg == nil {
		reg = registry.Experiments()
	}
	if cfg.ExpWorkers <= 0 {
		cfg.ExpWorkers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	e := &Engine{
		reg:        reg,
		store:      cfg.Store,
		expWorkers: cfg.ExpWorkers,
		queueCap:   cfg.QueueDepth,
		obs:        cfg.Obs,
		m:          newMetrics(cfg.Obs),
		tracing:    cfg.Tracing,
		jobs:       make(map[string]*job),
	}
	e.cond = sync.NewCond(&e.mu)
	e.pool = runner.StartPool(cfg.Workers, e.next)
	return e
}

// Submit validates the request and either serves it from the cache or
// enqueues it. The returned view is a consistent snapshot; poll Get for
// progress.
func (e *Engine) Submit(req Request) (View, error) {
	exp, ok := e.reg.Get(req.Experiment)
	if !ok {
		return View{}, fmt.Errorf("jobs: unknown experiment %q", req.Experiment)
	}
	values, err := exp.Resolve(req.Params)
	if err != nil {
		return View{}, err
	}
	canon, err := exp.CanonicalConfig(values)
	if err != nil {
		return View{}, err
	}
	key := store.Key(exp.Name, canon, req.Seed, registry.CodeVersion)

	var cached []byte
	if e.store != nil {
		cached, _ = e.store.Get(key)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return View{}, ErrShutdown
	}
	if cached == nil && e.queue.Len() >= e.queueCap {
		return View{}, ErrQueueFull
	}
	e.nextID++
	e.nextSeq++
	j := &job{
		id:         fmt.Sprintf("job-%d", e.nextID),
		seq:        e.nextSeq,
		exp:        exp,
		values:     values,
		seed:       req.Seed,
		priority:   req.Priority,
		key:        key,
		enqueuedAt: time.Now().UTC(),
		done:       make(chan struct{}),
		heapIdx:    -1,
	}
	e.jobs[j.id] = j
	e.m.submitted.Inc()
	if cached != nil {
		j.state = StateDone
		j.progress = 1
		j.fromCache = true
		j.result = cached
		j.finishedAt = j.enqueuedAt
		e.m.completed(StateDone).Inc()
		close(j.done)
		return e.viewLocked(j), nil
	}
	j.state = StateQueued
	if e.tracing {
		j.trace = obs.NewTrace()
	}
	heap.Push(&e.queue, j)
	e.m.depth.Set(int64(e.queue.Len()))
	e.cond.Signal()
	return e.viewLocked(j), nil
}

// Get returns a job snapshot by ID.
func (e *Engine) Get(id string) (View, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return View{}, false
	}
	return e.viewLocked(j), true
}

// List returns snapshots of every job, sorted by submit sequence: the
// order is deterministic however the jobs map iterates.
func (e *Engine) List() []View {
	e.mu.Lock()
	defer e.mu.Unlock()
	all := make([]*job, 0, len(e.jobs))
	for _, j := range e.jobs {
		all = append(all, j)
	}
	sort.Slice(all, func(i, k int) bool { return all[i].seq < all[k].seq })
	out := make([]View, 0, len(all))
	for _, j := range all {
		out = append(out, e.viewLocked(j))
	}
	return out
}

// Trace returns a job's recorded attack-pipeline trace. It exists only
// when the engine was built with Config.Tracing and the job actually
// ran (cache hits execute nothing). Reading a trace while its job is
// still running yields a consistent prefix.
func (e *Engine) Trace(id string) (*obs.Trace, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok || j.trace == nil {
		return nil, false
	}
	return j.trace, true
}

// Wait blocks until the job reaches a terminal state (or the context
// expires), then returns its final snapshot.
func (e *Engine) Wait(ctx context.Context, id string) (View, error) {
	e.mu.Lock()
	j, ok := e.jobs[id]
	e.mu.Unlock()
	if !ok {
		return View{}, fmt.Errorf("jobs: no job %q", id)
	}
	select {
	case <-j.done:
		v, _ := e.Get(id)
		return v, nil
	case <-ctx.Done():
		return View{}, ctx.Err()
	}
}

// Cancel cancels a queued job immediately; a running job gets a
// cooperative cancellation signal (its context is canceled) and keeps
// its final state when it returns. Canceling a terminal job is a no-op.
func (e *Engine) Cancel(id string) (View, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	if !ok {
		return View{}, fmt.Errorf("jobs: no job %q", id)
	}
	switch j.state {
	case StateQueued:
		if j.heapIdx >= 0 {
			heap.Remove(&e.queue, j.heapIdx)
			e.m.depth.Set(int64(e.queue.Len()))
		}
		e.finishLocked(j, StateCanceled, "canceled while queued", nil)
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return e.viewLocked(j), nil
}

// Shutdown stops intake, cancels all queued jobs, asks running jobs to
// stop (cooperatively), and waits for the workers to drain in-flight
// work. It returns ctx.Err if the drain outlives the context.
func (e *Engine) Shutdown(ctx context.Context) error {
	e.mu.Lock()
	if !e.closed {
		e.closed = true
		for e.queue.Len() > 0 {
			j := heap.Pop(&e.queue).(*job)
			e.finishLocked(j, StateCanceled, "engine shutdown", nil)
		}
		e.m.depth.Set(0)
		e.cond.Broadcast()
	}
	e.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		e.pool.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// next is the runner.Pool pull source: block until a job is available
// or the engine closes.
func (e *Engine) next() (func(), bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.queue.Len() > 0 {
			j := heap.Pop(&e.queue).(*job)
			ctx, cancel := context.WithCancel(context.Background())
			j.state = StateRunning
			j.startedAt = time.Now().UTC()
			j.cancel = cancel
			e.m.depth.Set(int64(e.queue.Len()))
			e.m.running.Inc()
			e.m.queueLatency.Observe(j.startedAt.Sub(j.enqueuedAt).Seconds())
			return func() { e.run(j, ctx) }, true
		}
		if e.closed {
			return nil, false
		}
		e.cond.Wait()
	}
}

// run executes one job on a pool worker. Panics in the experiment are
// converted into a failed state for this job only.
func (e *Engine) run(j *job, ctx context.Context) {
	defer j.cancel()
	var (
		res registry.Result
		err error
	)
	func() {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("experiment panicked: %v", r)
			}
		}()
		res, err = j.exp.Run(registry.RunContext{
			Ctx:     ctx,
			Seed:    j.seed,
			Workers: e.expWorkers,
			Values:  j.values,
			Progress: func(frac float64) {
				e.mu.Lock()
				if frac > j.progress && frac <= 1 {
					j.progress = frac
				}
				e.mu.Unlock()
			},
			Obs:   e.obs,
			Trace: j.trace,
		})
	}()

	var payload []byte
	state := StateDone
	msg := ""
	switch {
	case err != nil && ctx.Err() != nil:
		state, msg = StateCanceled, "canceled while running: "+err.Error()
	case err != nil:
		state, msg = StateFailed, err.Error()
	default:
		payload, err = json.Marshal(res)
		if err != nil {
			state, msg = StateFailed, "marshal result: "+err.Error()
		}
	}
	if state == StateDone && e.store != nil {
		if perr := e.store.Put(j.key, payload); perr != nil {
			// The result is still good; a failed disk write only costs
			// future cache hits.
			msg = "cache write failed: " + perr.Error()
		}
	}
	e.mu.Lock()
	e.finishLocked(j, state, msg, payload)
	e.mu.Unlock()
	e.m.running.Dec()
}

// finishLocked moves a job to a terminal state. Caller holds e.mu.
func (e *Engine) finishLocked(j *job, state State, msg string, payload []byte) {
	if j.state.Terminal() {
		return
	}
	j.state = state
	j.errMsg = msg
	j.result = payload
	if state == StateDone {
		j.progress = 1
	}
	j.finishedAt = time.Now().UTC()
	e.m.completed(state).Inc()
	if !j.startedAt.IsZero() {
		e.m.duration.Observe(j.finishedAt.Sub(j.startedAt).Seconds())
	}
	close(j.done)
}

func (e *Engine) viewLocked(j *job) View {
	v := View{
		ID:         j.id,
		Experiment: j.exp.Name,
		Config:     j.values,
		Seed:       j.seed,
		Priority:   j.priority,
		State:      j.state,
		Progress:   j.progress,
		FromCache:  j.fromCache,
		Key:        j.key,
		Error:      j.errMsg,
		Result:     append(json.RawMessage(nil), j.result...),
		EnqueuedAt: j.enqueuedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	return v
}

// jobHeap orders by priority descending, then seq ascending (FIFO
// within a priority band).
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].priority != h[k].priority {
		return h[i].priority > h[k].priority
	}
	return h[i].seq < h[k].seq
}
func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].heapIdx = i
	h[k].heapIdx = k
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	j := old[len(old)-1]
	old[len(old)-1] = nil
	j.heapIdx = -1
	*h = old[:len(old)-1]
	return j
}
