package mem

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x2000, PermRW)
	if err := m.WriteBytes(0x1800, []byte{1, 2, 3, 4}); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := make([]byte, 4)
	if err := m.ReadBytes(0x1800, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	for i, b := range []byte{1, 2, 3, 4} {
		if got[i] != b {
			t.Errorf("byte %d = %d, want %d", i, got[i], b)
		}
	}
}

func TestCrossPageAccess(t *testing.T) {
	m := New()
	m.Map(0x1000, 0x2000, PermRW)
	// Write spanning the 0x2000 page boundary.
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	if err := m.WriteBytes(0x2000-32, src); err != nil {
		t.Fatalf("cross-page write: %v", err)
	}
	dst := make([]byte, 64)
	if err := m.ReadBytes(0x2000-32, dst); err != nil {
		t.Fatalf("cross-page read: %v", err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestUnmappedFault(t *testing.T) {
	m := New()
	err := m.ReadBytes(0xdead000, make([]byte, 1))
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("error = %v, want *Fault", err)
	}
	if f.Mapped {
		t.Error("fault should report unmapped")
	}
	if f.PageNum() != 0xdead000>>PageShift {
		t.Errorf("PageNum = %#x", f.PageNum())
	}
}

func TestPermissionFaults(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermR)
	if err := m.ReadBytes(0x1000, make([]byte, 1)); err != nil {
		t.Errorf("read from r-- page: %v", err)
	}
	if err := m.WriteBytes(0x1000, []byte{1}); err == nil {
		t.Error("write to r-- page should fault")
	}
	if err := m.FetchBytes(0x1000, make([]byte, 1)); err == nil {
		t.Error("fetch from r-- page should fault")
	}
	m.Protect(0x1000, PageSize, PermRX)
	if err := m.FetchBytes(0x1000, make([]byte, 1)); err != nil {
		t.Errorf("fetch from r-x page: %v", err)
	}
}

func TestFaultHandlerRetry(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, 0) // mapped, no permissions
	var faults []Fault
	m.SetFaultHandler(func(f *Fault) bool {
		faults = append(faults, *f)
		m.Protect(0x1000, PageSize, PermRWX)
		return true
	})
	if err := m.ReadBytes(0x1000, make([]byte, 1)); err != nil {
		t.Fatalf("read after handler fix: %v", err)
	}
	if len(faults) != 1 {
		t.Fatalf("handler called %d times, want 1", len(faults))
	}
	if faults[0].Access != AccessRead || !faults[0].Mapped {
		t.Errorf("fault = %+v", faults[0])
	}
}

func TestFaultHandlerDecline(t *testing.T) {
	m := New()
	called := 0
	m.SetFaultHandler(func(f *Fault) bool {
		called++
		return false
	})
	if err := m.ReadBytes(0x5000, make([]byte, 1)); err == nil {
		t.Error("declined fault should propagate")
	}
	if called != 1 {
		t.Errorf("handler called %d times, want 1", called)
	}
}

func TestAccessedDirtyBits(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	a, d := m.AccessedDirty(0x1000)
	if a || d {
		t.Error("fresh page should have clear A/D bits")
	}
	_ = m.ReadBytes(0x1000, make([]byte, 1))
	a, d = m.AccessedDirty(0x1000)
	if !a || d {
		t.Errorf("after read: A=%v D=%v, want A=true D=false", a, d)
	}
	_ = m.WriteBytes(0x1000, []byte{1})
	a, d = m.AccessedDirty(0x1000)
	if !a || !d {
		t.Errorf("after write: A=%v D=%v, want both true", a, d)
	}
	m.ClearAccessedDirty(0x1000)
	a, d = m.AccessedDirty(0x1000)
	if a || d {
		t.Error("A/D bits should clear")
	}
}

func TestLoadProgram(t *testing.T) {
	m := New()
	code := []byte{0x90, 0x01, 0x02}
	m.LoadProgram(0x40_0000, code)
	perm, ok := m.PermAt(0x40_0000)
	if !ok || perm != PermRX {
		t.Fatalf("perm = %v ok=%v, want r-x", perm, ok)
	}
	got := make([]byte, 3)
	if err := m.FetchBytes(0x40_0000, got); err != nil {
		t.Fatalf("fetch: %v", err)
	}
	for i := range code {
		if got[i] != code[i] {
			t.Errorf("byte %d = %#x, want %#x", i, got[i], code[i])
		}
	}
	// Program pages must not be writable through stores.
	if err := m.WriteBytes(0x40_0000, []byte{1}); err == nil {
		t.Error("store to r-x program page should fault")
	}
}

func TestLoadProgramHighAddress(t *testing.T) {
	// The NightVision experiments place aliasing code 4/8 GiB apart; the
	// address space must handle > 2^32 addresses.
	m := New()
	hi := uint64(0x1_0000_0000) + 0x40_0000
	m.LoadProgram(hi, []byte{0x90})
	var b [1]byte
	if err := m.FetchBytes(hi, b[:]); err != nil {
		t.Fatalf("fetch high address: %v", err)
	}
	if b[0] != 0x90 {
		t.Errorf("byte = %#x", b[0])
	}
}

func TestUnmapDiscardsData(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	_ = m.WriteBytes(0x1000, []byte{42})
	m.Unmap(0x1000, PageSize)
	if err := m.ReadBytes(0x1000, make([]byte, 1)); err == nil {
		t.Error("read from unmapped page should fault")
	}
	m.Map(0x1000, PageSize, PermRW)
	var b [1]byte
	_ = m.ReadBytes(0x1000, b[:])
	if b[0] != 0 {
		t.Error("remapped page should be zeroed")
	}
}

func TestRead64Write64(t *testing.T) {
	m := New()
	m.Map(0x1000, PageSize, PermRW)
	const v = uint64(0xDEAD_BEEF_CAFE_F00D)
	if err := m.Write64(0x1008, v); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read64(0x1008)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Errorf("Read64 = %#x, want %#x", got, v)
	}
}

func TestPermString(t *testing.T) {
	if PermRWX.String() != "rwx" {
		t.Errorf("rwx = %q", PermRWX.String())
	}
	if PermRX.String() != "r-x" {
		t.Errorf("r-x = %q", PermRX.String())
	}
	if Perm(0).String() != "---" {
		t.Errorf("0 = %q", Perm(0).String())
	}
}

// TestQuickWriteReadIdentity property-tests that any written byte string
// is read back identically at any (mapped) address, including addresses
// spanning multiple pages and above 4 GiB.
func TestQuickWriteReadIdentity(t *testing.T) {
	m := New()
	base := uint64(0x2_0000_0000)
	m.Map(base, 16*PageSize, PermRW)
	f := func(off uint16, data []byte) bool {
		if len(data) > 4096 {
			data = data[:4096]
		}
		addr := base + uint64(off)%(8*PageSize)
		if err := m.WriteBytes(addr, data); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.ReadBytes(addr, got); err != nil {
			return false
		}
		for i := range data {
			if got[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFaultErrorMessagesAndAccessString(t *testing.T) {
	m := New()
	err := m.ReadBytes(0x9000, make([]byte, 1))
	if err == nil || !strings.Contains(err.Error(), "not mapped") {
		t.Errorf("unmapped fault message: %v", err)
	}
	m.Map(0x9000, PageSize, PermR)
	err = m.WriteBytes(0x9000, []byte{1})
	if err == nil || !strings.Contains(err.Error(), "r--") {
		t.Errorf("permission fault message: %v", err)
	}
	for a, want := range map[Access]string{AccessRead: "read", AccessWrite: "write", AccessFetch: "fetch", Access(9): "invalid"} {
		if a.String() != want {
			t.Errorf("Access(%d) = %q", a, a.String())
		}
	}
}

func TestMapZeroSizeAndRemapKeepsData(t *testing.T) {
	m := New()
	m.Map(0x1000, 0, PermRW) // no-op
	if m.MappedPages() != 0 {
		t.Error("zero-size Map should map nothing")
	}
	m.Map(0x1000, PageSize, PermRW)
	_ = m.WriteBytes(0x1000, []byte{9})
	m.Map(0x1000, PageSize, PermR) // remap: new perms, same data
	var b [1]byte
	_ = m.ReadBytes(0x1000, b[:])
	if b[0] != 9 {
		t.Error("remap must keep page data")
	}
	if m.MappedPages() != 1 {
		t.Errorf("MappedPages = %d", m.MappedPages())
	}
	m.Unmap(0x1000, 0) // no-op
	m.Protect(0x1000, 0, PermRWX)
}
