// Package mem implements the simulator's 64-bit virtual address space.
//
// Memory is a sparse collection of 4 KiB pages with per-page permissions
// and accessed/dirty bits, mirroring an x86 page-table view. Permission
// faults are reported to a registered FaultHandler, which is how the
// supervisor-level attacker mounts controlled-channel attacks (Xu et al.,
// cited as [64] in the paper): revoke execute permission on a code page,
// observe the fault, learn the page number of the next fetch.
package mem

import (
	"bytes"
	"fmt"
)

// PageSize is the size of a virtual memory page in bytes.
const PageSize = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// Perm is a page permission bit set.
type Perm uint8

// Permission bits.
const (
	PermR   Perm = 1 << iota // readable
	PermW                    // writable
	PermX                    // executable
	PermRW  = PermR | PermW
	PermRX  = PermR | PermX
	PermRWX = PermR | PermW | PermX
)

// String renders the permission set in "rwx" form.
func (p Perm) String() string {
	b := []byte("---")
	if p&PermR != 0 {
		b[0] = 'r'
	}
	if p&PermW != 0 {
		b[1] = 'w'
	}
	if p&PermX != 0 {
		b[2] = 'x'
	}
	return string(b)
}

// Access identifies the kind of memory access that caused a fault.
type Access uint8

// Access kinds.
const (
	AccessRead Access = iota
	AccessWrite
	AccessFetch
)

func (a Access) String() string {
	switch a {
	case AccessRead:
		return "read"
	case AccessWrite:
		return "write"
	case AccessFetch:
		return "fetch"
	}
	return "invalid"
}

// Fault describes a page fault: an access to an unmapped page or one
// lacking the required permission.
type Fault struct {
	Addr   uint64
	Access Access
	Perm   Perm // permissions the page had (0 if unmapped)
	Mapped bool
}

func (f *Fault) Error() string {
	if !f.Mapped {
		return fmt.Sprintf("mem: %s fault at %#x: page not mapped", f.Access, f.Addr)
	}
	return fmt.Sprintf("mem: %s fault at %#x: page is %s", f.Access, f.Addr, f.Perm)
}

// PageNum returns the virtual page number of the faulting address.
func (f *Fault) PageNum() uint64 { return f.Addr >> PageShift }

// FaultHandler observes page faults. Returning true retries the access
// (the handler is expected to have fixed permissions); returning false
// propagates the fault to the caller. This models the OS page-fault
// handler, which for the attacker doubles as the controlled channel.
type FaultHandler func(f *Fault) bool

// page is one 4 KiB unit of backing store plus its page-table entry state.
type page struct {
	data     [PageSize]byte
	perm     Perm
	accessed bool
	dirty    bool
}

// Memory is a sparse paged virtual address space. The zero value is not
// usable; call New.
//
// Memory is not safe for concurrent use: the simulator is single-threaded
// by design so that experiments are deterministic.
type Memory struct {
	pages   map[uint64]*page
	handler FaultHandler
	// free retains unmapped pages for reuse, so a pooled simulator
	// (experiments reuse one Memory per worker via Reset) stops
	// allocating 4 KiB backing stores on every run.
	free []*page
	// One-entry translation cache: fetch streams hit the same page for
	// dozens of consecutive accesses, so this removes most map lookups
	// from the hot path. Permission changes go through the cached *page
	// and stay coherent; Unmap/Reset recycle pages and must invalidate.
	lastPN    uint64
	lastPage  *page
	lastValid bool

	// gen counts mutations of anything that can change what a fetch of
	// given bytes observes: page data writes, permission changes, and
	// map/unmap/reset. The CPU's decode cache keys on it, so it must be
	// bumped by every such path. Starts at 1 so a zero-valued cache
	// entry can never validate.
	gen uint64
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page), gen: 1}
}

// Gen returns the current mutation generation: it changes whenever page
// contents, permissions or mappings do, so cached derivations of memory
// state (decoded instructions) are valid exactly while Gen is stable.
func (m *Memory) Gen() uint64 { return m.gen }

// Reset unmaps every page and removes the fault handler, returning the
// address space to its post-New state. The page backing stores are
// retained on a free list and zeroed on reuse, so a Reset Memory is
// indistinguishable from a fresh one but does not re-allocate.
func (m *Memory) Reset() {
	for _, p := range m.pages {
		m.free = append(m.free, p)
	}
	clear(m.pages)
	m.handler = nil
	m.lastValid = false
	m.gen++
}

// newPage returns a zeroed page with the given permissions, reusing the
// free list when possible.
func (m *Memory) newPage(perm Perm) *page {
	if n := len(m.free); n > 0 {
		p := m.free[n-1]
		m.free = m.free[:n-1]
		*p = page{perm: perm}
		return p
	}
	return &page{perm: perm}
}

// SetFaultHandler registers h as the page-fault handler. Passing nil
// removes the handler.
func (m *Memory) SetFaultHandler(h FaultHandler) { m.handler = h }

// Map creates pages covering [addr, addr+size) with the given
// permissions. Addresses are rounded outward to page boundaries.
// Remapping an existing page updates its permissions and keeps its data.
func (m *Memory) Map(addr, size uint64, perm Perm) {
	if size == 0 {
		return
	}
	m.gen++
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for pn := first; pn <= last; pn++ {
		if p, ok := m.pages[pn]; ok {
			p.perm = perm
			continue
		}
		m.pages[pn] = m.newPage(perm)
	}
}

// Unmap removes pages covering [addr, addr+size), discarding their data.
func (m *Memory) Unmap(addr, size uint64) {
	if size == 0 {
		return
	}
	m.gen++
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for pn := first; pn <= last; pn++ {
		if p, ok := m.pages[pn]; ok {
			m.free = append(m.free, p)
			delete(m.pages, pn)
		}
	}
	m.lastValid = false
}

// Protect changes the permissions of every mapped page covering
// [addr, addr+size). Unmapped pages in the range are ignored.
func (m *Memory) Protect(addr, size uint64, perm Perm) {
	if size == 0 {
		return
	}
	m.gen++
	first := addr >> PageShift
	last := (addr + size - 1) >> PageShift
	for pn := first; pn <= last; pn++ {
		if p, ok := m.pages[pn]; ok {
			p.perm = perm
		}
	}
}

// PermAt returns the permissions of the page containing addr and whether
// it is mapped.
func (m *Memory) PermAt(addr uint64) (Perm, bool) {
	p, ok := m.pages[addr>>PageShift]
	if !ok {
		return 0, false
	}
	return p.perm, true
}

// AccessedDirty returns the accessed and dirty bits of the page
// containing addr. Unmapped pages report false, false.
func (m *Memory) AccessedDirty(addr uint64) (accessed, dirty bool) {
	p, ok := m.pages[addr>>PageShift]
	if !ok {
		return false, false
	}
	return p.accessed, p.dirty
}

// ClearAccessedDirty clears the A/D bits on the page containing addr.
// Controlled-channel variants (Wang et al. [60]) poll these bits instead
// of forcing faults.
func (m *Memory) ClearAccessedDirty(addr uint64) {
	if p, ok := m.pages[addr>>PageShift]; ok {
		p.accessed = false
		p.dirty = false
	}
}

// lookup resolves a page number through the one-entry translation
// cache, falling back to (and refilling from) the page map.
func (m *Memory) lookup(pn uint64) (*page, bool) {
	if m.lastValid && pn == m.lastPN {
		return m.lastPage, true
	}
	p, ok := m.pages[pn]
	if ok {
		m.lastPN, m.lastPage, m.lastValid = pn, p, true
	}
	return p, ok
}

// PeekExec copies up to len(dst) bytes starting at addr into dst,
// stopping at the first page that is not mapped readable+executable.
// It never raises a fault or consults the handler; accessed bits are
// set exactly as a permitted read would set them. The CPU front end
// uses this for speculative fetch, which on real hardware probes the
// TLB without architecturally faulting.
func (m *Memory) PeekExec(addr uint64, dst []byte) int {
	n := 0
	for n < len(dst) {
		a := addr + uint64(n)
		p, ok := m.lookup(a >> PageShift)
		if !ok || p.perm&PermRX != PermRX {
			break
		}
		p.accessed = true
		off := a & (PageSize - 1)
		take := min(len(dst)-n, PageSize-int(off))
		copy(dst[n:n+take], p.data[off:])
		n += take
	}
	return n
}

// TouchExec sets the accessed bit on the page(s) covering [addr, addr+n),
// replicating the side effect a PeekExec of n bytes would have had. The
// CPU's decode cache calls this on hits so A/D-bit observers (Wang et
// al. [60]-style polling) cannot tell a cached decode from a real fetch.
func (m *Memory) TouchExec(addr uint64, n int) {
	if n <= 0 {
		return
	}
	first := addr >> PageShift
	if p, ok := m.lookup(first); ok {
		p.accessed = true
	}
	if last := (addr + uint64(n) - 1) >> PageShift; last != first {
		if p, ok := m.lookup(last); ok {
			p.accessed = true
		}
	}
}

// check resolves the page for one access, invoking the fault handler as
// needed. It returns the page or a *Fault.
func (m *Memory) check(addr uint64, access Access, need Perm) (*page, error) {
	for {
		p, ok := m.lookup(addr >> PageShift)
		if ok && p.perm&need == need {
			p.accessed = true
			if access == AccessWrite {
				p.dirty = true
			}
			return p, nil
		}
		f := &Fault{Addr: addr, Access: access, Mapped: ok}
		if ok {
			f.Perm = p.perm
		}
		if m.handler == nil || !m.handler(f) {
			return nil, f
		}
		// Handler asked for a retry (it has presumably remapped or
		// re-protected the page).
	}
}

// ReadBytes copies len(dst) bytes starting at addr into dst. The access
// may span pages; each page is permission-checked.
func (m *Memory) ReadBytes(addr uint64, dst []byte) error {
	return m.access(addr, dst, AccessRead, PermR)
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) error {
	return m.access(addr, src, AccessWrite, PermW)
}

// FetchBytes copies len(dst) instruction bytes starting at addr into dst,
// checking execute permission. The CPU front end uses this for fetch, so
// controlled-channel attacks on code pages see AccessFetch faults.
func (m *Memory) FetchBytes(addr uint64, dst []byte) error {
	return m.access(addr, dst, AccessFetch, PermX)
}

func (m *Memory) access(addr uint64, buf []byte, access Access, need Perm) error {
	for len(buf) > 0 {
		p, err := m.check(addr, access, need)
		if err != nil {
			return err
		}
		off := addr & (PageSize - 1)
		n := min(len(buf), PageSize-int(off))
		if access == AccessWrite {
			// Only stores to executable pages can change what a fetch
			// observes; ordinary data stores (stack, heap) leave the
			// decode generation alone. A page gaining X later goes
			// through Protect/Map, which bump.
			if p.perm&PermX != 0 {
				m.gen++
			}
			copy(p.data[off:], buf[:n])
		} else {
			copy(buf[:n], p.data[off:])
		}
		buf = buf[n:]
		addr += uint64(n)
	}
	return nil
}

// Read64 reads a little-endian 64-bit value at addr.
func (m *Memory) Read64(addr uint64) (uint64, error) {
	var b [8]byte
	if err := m.ReadBytes(addr, b[:]); err != nil {
		return 0, err
	}
	return le64(b[:]), nil
}

// Write64 writes a little-endian 64-bit value at addr.
func (m *Memory) Write64(addr uint64, v uint64) error {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	return m.WriteBytes(addr, b[:])
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// LoadProgram maps [addr, addr+len(code)) as RX and writes the code
// bytes, bypassing the W permission (it models the loader, not a store).
func (m *Memory) LoadProgram(addr uint64, code []byte) {
	if len(code) == 0 {
		return
	}
	// Fast path: the bytes land in one already-RX page — the common
	// case when a cached monitor re-writes its snippet instructions.
	// Re-writing identical bytes changes nothing a fetch can observe,
	// so it keeps the generation (and the decode cache) intact.
	pn := addr >> PageShift
	if (addr+uint64(len(code))-1)>>PageShift == pn {
		if p, ok := m.lookup(pn); ok && p.perm == PermRX {
			dst := p.data[addr&(PageSize-1):][:len(code)]
			if !bytes.Equal(dst, code) {
				m.gen++
				copy(dst, code)
			}
			return
		}
	}
	m.gen++
	m.Map(addr, uint64(len(code)), PermRX)
	a := addr
	rest := code
	for len(rest) > 0 {
		p := m.pages[a>>PageShift]
		off := a & (PageSize - 1)
		n := copy(p.data[off:], rest)
		rest = rest[n:]
		a += uint64(n)
	}
}

// MappedPages returns the number of mapped pages; useful for tests and
// resource accounting.
func (m *Memory) MappedPages() int { return len(m.pages) }
