// Package registry is the typed experiment registry: the single list of
// every NightVision experiment, each with a name, description, config
// schema with defaults, and a run function returning a JSON-serializable
// result. cmd/nightvision dispatches CLI invocations through it and
// cmd/nightvisiond serves it over HTTP; internal/jobs caches its results
// content-addressed by (name, canonical config, seed, CodeVersion).
package registry

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

// CodeVersion names the current experiment-semantics generation and is
// part of every cache key (internal/store). Bump it whenever any
// experiment's output for a fixed (config, seed) can change — cached
// cells from older generations then simply never match again.
const CodeVersion = "nv3"

// Kind is the type of a config parameter.
type Kind string

const (
	Int   Kind = "int"
	Float Kind = "float"
	Bool  Kind = "bool"
	Str   Kind = "string"
)

// Param is one entry of an experiment's config schema.
type Param struct {
	Name        string `json:"name"`
	Kind        Kind   `json:"kind"`
	Default     any    `json:"default"` // int for Int, float64 for Float, bool for Bool, string for Str
	Description string `json:"description"`
	// Enum, for Str params, is the closed set of accepted values;
	// Resolve rejects anything else with an error that lists them. The
	// backend parameter uses this so the CLI and daemon reject unknown
	// backend names for free.
	Enum []string `json:"enum,omitempty"`
}

// Values is a resolved parameter set: every schema parameter present,
// with its declared Go type (int, float64 or bool).
type Values map[string]any

// Int returns an int parameter; it panics on a name or type that the
// schema resolution could not have produced (a programming error).
func (v Values) Int(name string) int {
	x, ok := v[name].(int)
	if !ok {
		panic(fmt.Sprintf("registry: no int param %q", name))
	}
	return x
}

// Float returns a float64 parameter.
func (v Values) Float(name string) float64 {
	x, ok := v[name].(float64)
	if !ok {
		panic(fmt.Sprintf("registry: no float param %q", name))
	}
	return x
}

// Bool returns a bool parameter.
func (v Values) Bool(name string) bool {
	x, ok := v[name].(bool)
	if !ok {
		panic(fmt.Sprintf("registry: no bool param %q", name))
	}
	return x
}

// Str returns a string parameter.
func (v Values) Str(name string) string {
	x, ok := v[name].(string)
	if !ok {
		panic(fmt.Sprintf("registry: no string param %q", name))
	}
	return x
}

// Result is what an experiment run returns: a JSON-marshalable value
// (exported fields only, deterministic for a fixed config and seed)
// that also renders the CLI's human-readable report. The CLI's -json
// mode and the daemon marshal the same value, so both share one
// serialization path.
type Result interface {
	Human() string
}

// RunContext carries the per-run inputs an experiment receives.
type RunContext struct {
	// Ctx is canceled when the job is canceled or the engine shuts
	// down. Cancellation is cooperative: single-call experiments run to
	// completion; multi-phase entries check between phases.
	Ctx context.Context
	// Seed is the experiment seed (0 = the package default 0xA11, as
	// everywhere else in the repo).
	Seed uint64
	// Workers bounds the internal/runner engine parallelism. It is an
	// execution detail, never part of the cache key: results are
	// bit-identical for every value (PR 1's guarantee).
	Workers int
	// Values is the resolved config (defaults applied, types checked).
	Values Values
	// Progress, if non-nil, receives coarse completion fractions in
	// [0, 1]. Entries report between phases; single-call experiments
	// may never call it.
	Progress func(frac float64)
	// Obs, when non-nil, receives the run's microarchitectural and
	// pipeline metrics; Trace, when non-nil, records the attack
	// timeline. Like Workers, both are execution details: strictly
	// write-only for experiment code and never part of cache keys or
	// Result bytes.
	Obs   *obs.Registry
	Trace *obs.Trace
}

// progress reports a fraction if a sink is attached.
func (rc RunContext) progress(frac float64) {
	if rc.Progress != nil {
		rc.Progress(frac)
	}
}

// Experiment is one registered experiment.
type Experiment struct {
	Name        string
	Description string
	Params      []Param
	Run         func(rc RunContext) (Result, error)
	// DefaultDeadline is the run-time budget the job engine applies
	// when a submission names none (0 = unlimited). Like Workers it is
	// an execution detail — never part of the config schema, the cache
	// key, or the Result bytes.
	DefaultDeadline time.Duration
}

// Defaults returns a fresh Values holding every parameter's default.
func (e *Experiment) Defaults() Values {
	v := make(Values, len(e.Params))
	for _, p := range e.Params {
		v[p.Name] = p.Default
	}
	return v
}

// Resolve merges raw (typically decoded from JSON, so numbers arrive as
// float64) over the schema defaults. Unknown names, mistyped values,
// non-integral values for Int params, and negative numbers are
// rejected — every parameter in this repo is a count, size or stddev.
func (e *Experiment) Resolve(raw map[string]any) (Values, error) {
	v := e.Defaults()
	for name, val := range raw {
		p := e.param(name)
		if p == nil {
			return nil, fmt.Errorf("registry: experiment %q has no parameter %q", e.Name, name)
		}
		coerced, err := coerce(*p, val)
		if err != nil {
			return nil, fmt.Errorf("registry: %s.%s: %w", e.Name, name, err)
		}
		v[name] = coerced
	}
	return v, nil
}

func (e *Experiment) param(name string) *Param {
	for i := range e.Params {
		if e.Params[i].Name == name {
			return &e.Params[i]
		}
	}
	return nil
}

func coerce(p Param, val any) (any, error) {
	switch p.Kind {
	case Int:
		switch x := val.(type) {
		case int:
			if x < 0 {
				return nil, fmt.Errorf("must be >= 0, got %d", x)
			}
			return x, nil
		case float64:
			if x != math.Trunc(x) || math.IsInf(x, 0) || math.IsNaN(x) {
				return nil, fmt.Errorf("must be an integer, got %v", x)
			}
			if x < 0 {
				return nil, fmt.Errorf("must be >= 0, got %v", x)
			}
			return int(x), nil
		case json.Number:
			i, err := x.Int64()
			if err != nil || i < 0 {
				return nil, fmt.Errorf("must be a non-negative integer, got %v", x)
			}
			return int(i), nil
		}
	case Float:
		switch x := val.(type) {
		case float64:
			if x < 0 || math.IsInf(x, 0) || math.IsNaN(x) {
				return nil, fmt.Errorf("must be a finite non-negative number, got %v", x)
			}
			return x, nil
		case int:
			if x < 0 {
				return nil, fmt.Errorf("must be >= 0, got %d", x)
			}
			return float64(x), nil
		case json.Number:
			f, err := x.Float64()
			if err != nil || f < 0 {
				return nil, fmt.Errorf("must be a non-negative number, got %v", x)
			}
			return f, nil
		}
	case Bool:
		if x, ok := val.(bool); ok {
			return x, nil
		}
	case Str:
		x, ok := val.(string)
		if !ok {
			break
		}
		if len(p.Enum) == 0 {
			return x, nil
		}
		for _, allowed := range p.Enum {
			if x == allowed {
				return x, nil
			}
		}
		return nil, fmt.Errorf("unknown value %q, want one of %s", x, strings.Join(p.Enum, ", "))
	}
	return nil, fmt.Errorf("want %s, got %T", p.Kind, val)
}

// CanonicalConfig serializes resolved values as the canonical JSON the
// cache key hashes: one object, keys sorted (encoding/json sorts map
// keys), values in their schema-declared types so two submissions of
// the same logical config always produce the same bytes.
func (e *Experiment) CanonicalConfig(v Values) ([]byte, error) {
	// Re-validate: only schema parameters, fully populated.
	if len(v) != len(e.Params) {
		return nil, fmt.Errorf("registry: %s: config has %d values, schema %d", e.Name, len(v), len(e.Params))
	}
	for _, p := range e.Params {
		if _, ok := v[p.Name]; !ok {
			return nil, fmt.Errorf("registry: %s: config missing %q", e.Name, p.Name)
		}
	}
	return json.Marshal(map[string]any(v))
}

// Registry holds experiments in registration order.
type Registry struct {
	byName map[string]*Experiment
	order  []*Experiment
}

// New returns an empty registry (tests build their own with fake
// experiments; production code uses Experiments()).
func New() *Registry {
	return &Registry{byName: make(map[string]*Experiment)}
}

// Register adds an experiment; duplicate names and nil Run are
// programming errors and panic.
func (r *Registry) Register(e Experiment) {
	if e.Name == "" || e.Run == nil {
		panic("registry: experiment needs a name and a run function")
	}
	if _, dup := r.byName[e.Name]; dup {
		panic(fmt.Sprintf("registry: duplicate experiment %q", e.Name))
	}
	cp := e
	r.byName[e.Name] = &cp
	r.order = append(r.order, &cp)
}

// Get looks an experiment up by name.
func (r *Registry) Get(name string) (*Experiment, bool) {
	e, ok := r.byName[name]
	return e, ok
}

// List returns all experiments in registration order.
func (r *Registry) List() []*Experiment {
	return append([]*Experiment(nil), r.order...)
}

// Names returns the sorted experiment names (for usage strings).
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
