package registry

// The concrete registry: every experiment of the paper's evaluation,
// with the config schema the old cmd/nightvision flags implied and a
// JSON-marshalable result type whose Human() rendering is the CLI
// report. Defaults mirror the historical CLI defaults (iters=100,
// runs=100, corpus=2000), not the paper-scale numbers, because this is
// the serving path.

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/experiments"
	"repro/internal/stats"
	"repro/internal/uarch"
)

var (
	defaultRegistry *Registry
	buildOnce       sync.Once
)

// Experiments returns the process-wide registry with every paper
// experiment registered, built on first use.
func Experiments() *Registry {
	buildOnce.Do(func() {
		defaultRegistry = New()
		registerAll(defaultRegistry)
	})
	return defaultRegistry
}

// Common parameters shared by every entry.
func itersParam(def int) Param {
	return Param{Name: "iters", Kind: Int, Default: def, Description: "measurement repetitions per data point (paper: 1000)"}
}

func noiseParam() Param {
	return Param{Name: "noise", Kind: Float, Default: 0.0, Description: "LBR noise stddev in cycles (0 = LBR, ~10 = rdtsc)"}
}

func runsParam(def int, what string) Param {
	return Param{Name: "runs", Kind: Int, Default: def, Description: what}
}

// backendParam is on every experiment: the microarchitecture backend
// (internal/uarch) the simulator models. Because it is a schema
// parameter it lands in the canonical config JSON, so cache keys
// (internal/store) distinguish backends with no further plumbing; the
// enum makes Resolve reject unknown names with the backend list, which
// the CLI prints and the daemon returns as a 400.
func backendParam() Param {
	return Param{
		Name:        "backend",
		Kind:        Str,
		Default:     uarch.DefaultName,
		Enum:        uarch.Names(),
		Description: "microarchitecture backend (BTB geometry/hash, update policy, RSB)",
	}
}

// baseCfg translates a RunContext into the experiments.Config every
// entry starts from. Workers deliberately rides outside the schema: it
// never changes results (internal/runner's determinism guarantee), so
// it must not change cache keys either.
func baseCfg(rc RunContext) experiments.Config {
	return experiments.Config{
		Iters:   rc.Values.Int("iters"),
		Noise:   rc.Values.Float("noise"),
		Seed:    rc.Seed,
		Backend: rc.Values.Str("backend"),
		Workers: rc.Workers,
		Ctx:     rc.Ctx,
		Obs:     rc.Obs,
		Trace:   rc.Trace,
	}
}

// ---- Figure 2 ----

// Fig2Result is the Figure 2 reproduction: the two offset-sweep series
// and the collision-range/outside cycle gap.
type Fig2Result struct {
	With    *stats.Series `json:"with_f2"`
	Without *stats.Series `json:"without_f2"`
	GapIn   float64       `json:"gap_in_range"`
	GapOut  float64       `json:"gap_outside"`
}

func (r *Fig2Result) Human() string {
	var b strings.Builder
	b.WriteString("== Figure 2: BTB deallocation by non-control-transfer instructions ==\n")
	b.WriteString(stats.Table("F2 offset", r.With, r.Without))
	fmt.Fprintf(&b, "mean gap: collision range %.2f cycles, outside %.2f cycles\n", r.GapIn, r.GapOut)
	b.WriteString("paper: clear gap while F2 < F1+2, none after (Takeaway 1)")
	return b.String()
}

// ---- Figure 4 ----

// Fig4Result is the Figure 4 reproduction.
type Fig4Result struct {
	With    *stats.Series `json:"with_f2"`
	Without *stats.Series `json:"without_f2"`
	GapIn   float64       `json:"gap_in_range"`
	GapOut  float64       `json:"gap_outside"`
	Slope   float64       `json:"control_slope"`
}

func (r *Fig4Result) Human() string {
	var b strings.Builder
	b.WriteString("== Figure 4: prediction-window range semantics ==\n")
	b.WriteString(stats.Table("F1 offset", r.With, r.Without))
	fmt.Fprintf(&b, "mean gap: range-hit %.2f cycles, outside %.2f; control slope %.2f cyc/nop\n", r.GapIn, r.GapOut, r.Slope)
	b.WriteString("paper: constant gap while F1 < F2+2, declining control line (Takeaway 2)")
	return b.String()
}

// ---- Use case 1 (GCD and bn_cmp) ----

// LeakResult wraps the §7.2 GCD leakage run.
type LeakResult struct {
	GCD *experiments.UseCase1Result `json:"gcd"`
}

func (r *LeakResult) Human() string {
	return "== Use case 1: control-flow leakage on defended GCD (§7.2) ==\n" +
		fmt.Sprintf("balancing+alignment+CFR: %v\n", r.GCD) +
		"paper: 99.3% accuracy, ~30 iterations/run, defenses ineffective"
}

// BnCmpLeakResult wraps the §7.2 bn_cmp leakage run.
type BnCmpLeakResult struct {
	BnCmp *experiments.BnCmpResult `json:"bn_cmp"`
}

func (r *BnCmpLeakResult) Human() string {
	return "== Use case 1b: control-flow leakage on bn_cmp (§7.2) ==\n" +
		fmt.Sprintf("%v\n", r.BnCmp) +
		"paper: 100% accuracy over 100 runs"
}

// ---- Figure 12 ----

// Fig12Result is the fingerprinting-vs-corpus reproduction.
type Fig12Result struct {
	CorpusN int                          `json:"corpus_n"`
	Refs    []experiments.Figure12Result `json:"references"`
}

func (r *Fig12Result) Human() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figure 12: fingerprinting vs %d-function corpus (§7.3) ==\n", r.CorpusN)
	for _, ref := range r.Refs {
		fmt.Fprintf(&b, "reference %s: self-similarity %.3f (rank %d), best impostor %.3f\n",
			ref.Reference, ref.SelfSimilarity, ref.SelfRank, ref.BestImpostor)
		for i, s := range ref.Top {
			fmt.Fprintf(&b, "  #%-3d %-16s %.3f\n", i+1, s.Label, s.Score)
		}
	}
	b.WriteString("paper: true function ranks #1 (self-similarity 75.8% GCD, 88.2% bn_cmp)")
	return b.String()
}

// ---- Figure 13 ----

// Fig13Result holds both similarity matrices.
type Fig13Result struct {
	Versions  *experiments.SimilarityMatrix `json:"versions"`
	OptLevels *experiments.SimilarityMatrix `json:"opt_levels"`
}

func matrixString(m *experiments.SimilarityMatrix) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "")
	for _, l := range m.Labels {
		fmt.Fprintf(&b, " %6s", l)
	}
	b.WriteByte('\n')
	for i, row := range m.Cells {
		fmt.Fprintf(&b, "%-8s", m.Labels[i])
		for _, v := range row {
			fmt.Fprintf(&b, " %6.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *Fig13Result) Human() string {
	return "== Figure 13 (left): GCD similarity across mbedTLS versions ==\n" +
		matrixString(r.Versions) +
		"\n== Figure 13 (right): GCD similarity across optimization flags ==\n" +
		matrixString(r.OptLevels) +
		"paper: high within implementation/flag clusters, low across"
}

// ---- Noise sweep ----

// NoiseResult is the accuracy-vs-noise sweep (footnote 2).
type NoiseResult struct {
	Accuracy *stats.Series `json:"accuracy"`
}

func (r *NoiseResult) Human() string {
	return "== Leakage accuracy vs measurement noise (footnote 2) ==\n" +
		stats.Table("sigma", r.Accuracy) +
		"paper: LBR is orders of magnitude less noisy than rdtsc; accuracy holds\n" +
		"while sigma stays below the misprediction bubble (8-17 cycles)"
}

// ---- Fragment pressure ----

// PressureResult is the §4.2 BTB-pressure sweep.
type PressureResult struct {
	Hit      *stats.Series `json:"hit_rate"`
	FalsePos *stats.Series `json:"false_positive_rate"`
}

func (r *PressureResult) Human() string {
	return "== BTB pressure vs victim fragment length (§4.2) ==\n" +
		stats.Table("filler", r.Hit, r.FalsePos) +
		"paper: victim time slices must stay short or attacker entries are evicted"
}

// ---- Baselines ----

// BaselineResult is the observation-granularity comparison plus the
// §8.3 sequence-vs-set extension.
type BaselineResult struct {
	Granularity []experiments.GranularityResult `json:"granularity"`
	SeqVsSet    experiments.SequenceVsSetResult `json:"sequence_vs_set"`
}

func (r *BaselineResult) Human() string {
	var b strings.Builder
	b.WriteString("== Baselines: observation granularity ==\n")
	for _, g := range r.Granularity {
		b.WriteString(g.String())
		b.WriteByte('\n')
	}
	b.WriteString("\n== §8.3 extension: sequence alignment vs set intersection ==\n")
	fmt.Fprintf(&b, "set:      self %.3f, impostor %.3f, separation %.3f\n",
		r.SeqVsSet.SetSelf, r.SeqVsSet.SetImpostor, r.SeqVsSet.SetSeparation())
	fmt.Fprintf(&b, "sequence: self %.3f, impostor %.3f, separation %.3f",
		r.SeqVsSet.SeqSelf, r.SeqVsSet.SeqImpostor, r.SeqVsSet.SeqSeparation())
	return b.String()
}

// ---- Robustness ----

// RobustnessSweepResult wraps the interference sweep.
type RobustnessSweepResult struct {
	Sweep *experiments.RobustnessResult `json:"sweep"`
}

func (r *RobustnessSweepResult) Human() string {
	return "== Robustness: leakage accuracy vs injected interference ==\n" +
		r.Sweep.String() + "\n" +
		"model: deterministic seed-driven faults (timer interrupts, co-runner BTB\n" +
		"pollution, LBR loss/flush, heavy-tailed outliers); the paper survives the\n" +
		"real-machine equivalents with repetition and majority voting (§7)"
}

// ---- ret2spec ----

// Ret2SpecRegResult wraps the RSB depth-extraction and cross-process
// steering measurements.
type Ret2SpecRegResult struct {
	Res *experiments.Ret2SpecResult `json:"ret2spec"`
}

func (r *Ret2SpecRegResult) Human() string {
	return "== ret2spec: RSB-steered speculative control flow ==\n" +
		stats.Table("chain depth", r.Res.Squashes) +
		fmt.Sprintf("backend %s: modeled RSB depth %d, squash knee infers %d\n",
			r.Res.Backend, r.Res.RSBDepth, r.Res.InferredDepth) +
		fmt.Sprintf("cross-process steering: %.0f wrong-path windows poisoned vs %.0f clean\n",
			r.Res.PoisonedWindows, r.Res.CleanWindows) +
		"ret2spec (arXiv 1807.10364): overflow pops stale targets; contents survive\n" +
		"context switches, steering the next process's speculative fetch"
}

// clamp caps a parameter the way the old CLI did (the noise sweep and
// baselines are quadratic-ish in these knobs). The cap is part of the
// experiment's semantics, so two configs that clamp to the same
// effective value may occupy two cache cells — both hold the identical
// clamped result.
func clamp(v, max int) int {
	if v > max {
		return max
	}
	return v
}

func registerAll(r *Registry) {
	r.Register(Experiment{
		Name:        "fig2",
		Description: "BTB deallocation by non-branches (Figure 2)",
		Params:      []Param{backendParam(), itersParam(100), noiseParam()},
		Run: func(rc RunContext) (Result, error) {
			with, without, err := experiments.Figure2(baseCfg(rc))
			if err != nil {
				return nil, err
			}
			in, out := experiments.Figure2Gap(with, without)
			return &Fig2Result{With: with, Without: without, GapIn: in, GapOut: out}, nil
		},
	})

	r.Register(Experiment{
		Name:        "fig4",
		Description: "prediction-window range semantics (Figure 4)",
		Params:      []Param{backendParam(), itersParam(100), noiseParam()},
		Run: func(rc RunContext) (Result, error) {
			with, without, err := experiments.Figure4(baseCfg(rc))
			if err != nil {
				return nil, err
			}
			in, out, slope := experiments.Figure4Gap(with, without)
			return &Fig4Result{With: with, Without: without, GapIn: in, GapOut: out, Slope: slope}, nil
		},
	})

	r.Register(Experiment{
		Name:        "leak",
		Description: "control-flow leakage on defended GCD (§7.2)",
		Params:      []Param{backendParam(), itersParam(100), noiseParam(), runsParam(100, "victim runs (paper: 100)")},
		Run: func(rc RunContext) (Result, error) {
			res, err := experiments.UseCase1GCD(baseCfg(rc), rc.Values.Int("runs"), experiments.AllDefenses())
			if err != nil {
				return nil, err
			}
			return &LeakResult{GCD: res}, nil
		},
	})

	r.Register(Experiment{
		Name:        "bncmp",
		Description: "control-flow leakage on bn_cmp (§7.2)",
		Params:      []Param{backendParam(), itersParam(100), noiseParam(), runsParam(100, "victim runs (paper: 100)")},
		Run: func(rc RunContext) (Result, error) {
			res, err := experiments.UseCase1BnCmp(baseCfg(rc), rc.Values.Int("runs"), experiments.AllDefenses())
			if err != nil {
				return nil, err
			}
			return &BnCmpLeakResult{BnCmp: res}, nil
		},
	})

	r.Register(Experiment{
		Name:        "fig12",
		Description: "function fingerprinting vs corpus (Figure 12)",
		Params: []Param{
			backendParam(), itersParam(100), noiseParam(),
			{Name: "corpus", Kind: Int, Default: 2000, Description: "corpus size (paper: 175168)"},
			{Name: "top", Kind: Int, Default: 10, Description: "entries of the ranking to report"},
		},
		Run: func(rc RunContext) (Result, error) {
			n := rc.Values.Int("corpus")
			refs, err := experiments.Figure12(baseCfg(rc), n, rc.Values.Int("top"))
			if err != nil {
				return nil, err
			}
			return &Fig12Result{CorpusN: n, Refs: refs}, nil
		},
	})

	r.Register(Experiment{
		Name:        "fig13",
		Description: "fingerprint robustness across versions/flags (Figure 13)",
		Params:      []Param{backendParam(), itersParam(100), noiseParam()},
		Run: func(rc RunContext) (Result, error) {
			vers, err := experiments.Figure13Versions(baseCfg(rc))
			if err != nil {
				return nil, err
			}
			rc.progress(0.5)
			if err := rc.Ctx.Err(); err != nil {
				return nil, err
			}
			opt, err := experiments.Figure13OptLevels(baseCfg(rc))
			if err != nil {
				return nil, err
			}
			return &Fig13Result{Versions: vers, OptLevels: opt}, nil
		},
	})

	r.Register(Experiment{
		Name:        "noise",
		Description: "leakage accuracy vs measurement noise (footnote 2)",
		Params:      []Param{backendParam(), itersParam(100), noiseParam(), runsParam(10, "victim runs per sigma (clamped to 10)")},
		Run: func(rc RunContext) (Result, error) {
			runs := clamp(rc.Values.Int("runs"), 10)
			acc, err := experiments.NoiseSweep(baseCfg(rc), []float64{0, 1, 2, 4, 8, 16, 32}, runs)
			if err != nil {
				return nil, err
			}
			return &NoiseResult{Accuracy: acc}, nil
		},
	})

	r.Register(Experiment{
		Name:        "pressure",
		Description: "BTB eviction vs victim fragment length (§4.2)",
		Params:      []Param{backendParam(), itersParam(100), noiseParam()},
		Run: func(rc RunContext) (Result, error) {
			hit, fp, err := experiments.FragmentPressure(baseCfg(rc), []int{0, 64, 256, 1024, 2048, 4096, 8192}, 8)
			if err != nil {
				return nil, err
			}
			return &PressureResult{Hit: hit, FalsePos: fp}, nil
		},
	})

	r.Register(Experiment{
		Name:        "baseline",
		Description: "fingerprinting vs observation granularity + §8.3 sequences",
		Params: []Param{
			backendParam(), itersParam(100), noiseParam(),
			{Name: "corpus", Kind: Int, Default: 1000, Description: "corpus size (clamped to 1000)"},
		},
		Run: func(rc RunContext) (Result, error) {
			n := clamp(rc.Values.Int("corpus"), 1000)
			gran, err := experiments.GranularityComparison(baseCfg(rc), n)
			if err != nil {
				return nil, err
			}
			rc.progress(0.5)
			if err := rc.Ctx.Err(); err != nil {
				return nil, err
			}
			seq, err := experiments.SequenceVsSet(baseCfg(rc), n)
			if err != nil {
				return nil, err
			}
			return &BaselineResult{Granularity: gran, SeqVsSet: *seq}, nil
		},
	})

	r.Register(Experiment{
		Name:        "robustness",
		Description: "leakage accuracy vs injected interference",
		Params:      []Param{backendParam(), itersParam(100), noiseParam(), runsParam(25, "victim runs per sweep cell (clamped to 25)")},
		Run: func(rc RunContext) (Result, error) {
			runs := clamp(rc.Values.Int("runs"), 25)
			res, err := experiments.RobustnessSweep(baseCfg(rc), nil, runs)
			if err != nil {
				return nil, err
			}
			return &RobustnessSweepResult{Sweep: res}, nil
		},
	})

	r.Register(Experiment{
		Name:        "ret2spec",
		Description: "RSB-steered speculative control flow (ret2spec, any backend)",
		Params: []Param{
			backendParam(), itersParam(100), noiseParam(),
			{Name: "depth", Kind: Int, Default: 24, Description: "deepest call chain of the overflow sweep (0 = RSB depth + 4)"},
			{Name: "rsb_depth", Kind: Int, Default: 0, Description: "modeled RSB entries (0 = backend native depth)"},
		},
		Run: func(rc RunContext) (Result, error) {
			res, err := experiments.Ret2Spec(baseCfg(rc), rc.Values.Int("depth"), rc.Values.Int("rsb_depth"))
			if err != nil {
				return nil, err
			}
			return &Ret2SpecRegResult{Res: res}, nil
		},
	})

	// Deadline defaults: every paper experiment at service-default
	// parameters finishes in seconds, so ten minutes is a generous
	// run-time budget that still unwedges a worker if a config blows up
	// combinatorially. Submissions override per job via deadline_ms.
	for _, e := range r.List() {
		e.DefaultDeadline = 10 * time.Minute
	}
}
