package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func testExp() Experiment {
	return Experiment{
		Name:        "fake",
		Description: "schema test fixture",
		Params: []Param{
			{Name: "n", Kind: Int, Default: 7},
			{Name: "sigma", Kind: Float, Default: 1.5},
			{Name: "fast", Kind: Bool, Default: false},
		},
		Run: func(rc RunContext) (Result, error) { return nil, nil },
	}
}

func TestResolveDefaultsAndOverrides(t *testing.T) {
	e := testExp()
	v, err := e.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int("n") != 7 || v.Float("sigma") != 1.5 || v.Bool("fast") {
		t.Fatalf("defaults wrong: %v", v)
	}

	// JSON-decoded overrides arrive as float64; ints must coerce.
	v, err = e.Resolve(map[string]any{"n": float64(12), "fast": true})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int("n") != 12 || !v.Bool("fast") || v.Float("sigma") != 1.5 {
		t.Fatalf("overrides wrong: %v", v)
	}
}

func TestResolveRejects(t *testing.T) {
	e := testExp()
	cases := []map[string]any{
		{"bogus": 1},     // unknown name
		{"n": 1.5},       // non-integral int
		{"n": -1},        // negative
		{"n": "12"},      // wrong type
		{"sigma": -0.5},  // negative float
		{"fast": "true"}, // wrong type
	}
	for _, raw := range cases {
		if _, err := e.Resolve(raw); err == nil {
			t.Errorf("Resolve(%v) accepted, want error", raw)
		}
	}
}

func TestCanonicalConfigDeterministic(t *testing.T) {
	e := testExp()
	// Same logical config via different override paths must produce the
	// same canonical bytes (this is what makes cache keys collide on
	// purpose).
	v1, err := e.Resolve(map[string]any{"n": float64(7)})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := e.Resolve(nil)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := e.CanonicalConfig(v1)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.CanonicalConfig(v2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("canonical config differs: %s vs %s", c1, c2)
	}
	// Keys must come out sorted regardless of map iteration order.
	want := `{"fast":false,"n":7,"sigma":1.5}`
	if string(c1) != want {
		t.Fatalf("canonical config %s, want %s", c1, want)
	}
}

func TestCanonicalConfigRejectsPartialValues(t *testing.T) {
	e := testExp()
	if _, err := e.CanonicalConfig(Values{"n": 1}); err == nil {
		t.Fatal("partial Values accepted")
	}
}

func TestRegistryOrderAndLookup(t *testing.T) {
	r := New()
	r.Register(Experiment{Name: "b", Run: func(RunContext) (Result, error) { return nil, nil }})
	r.Register(Experiment{Name: "a", Run: func(RunContext) (Result, error) { return nil, nil }})
	if got := r.List(); len(got) != 2 || got[0].Name != "b" || got[1].Name != "a" {
		t.Fatalf("List order wrong: %v", got)
	}
	if names := r.Names(); names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names not sorted: %v", names)
	}
	if _, ok := r.Get("a"); !ok {
		t.Fatal("Get(a) failed")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	r.Register(Experiment{Name: "a", Run: func(RunContext) (Result, error) { return nil, nil }})
}

// TestEntriesRunAndMarshal runs a cheap real experiment through the
// default registry and checks the shared serialization path: the result
// marshals to JSON and renders a human report.
func TestEntriesRunAndMarshal(t *testing.T) {
	reg := Experiments()
	for _, e := range reg.List() {
		if len(e.Params) == 0 || e.Description == "" {
			t.Errorf("entry %q missing schema or description", e.Name)
		}
	}
	exp, ok := reg.Get("fig2")
	if !ok {
		t.Fatal("fig2 not registered")
	}
	v, err := exp.Resolve(map[string]any{"iters": 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.Run(RunContext{Ctx: context.Background(), Seed: 5, Workers: 1, Values: v})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Fig2Result
	if err := json.Unmarshal(payload, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.GapIn <= decoded.GapOut {
		t.Fatalf("fig2 JSON round trip lost the gap: in=%v out=%v", decoded.GapIn, decoded.GapOut)
	}
	if h := res.Human(); !strings.Contains(h, "Figure 2") {
		t.Fatalf("Human() rendering wrong: %q", h)
	}
}

// TestEntriesDeterministicJSON is the registry half of the cache
// guarantee: the same (experiment, config, seed) marshals to byte-
// identical JSON on every run, for any Workers value.
func TestEntriesDeterministicJSON(t *testing.T) {
	exp, _ := Experiments().Get("fig2")
	v, err := exp.Resolve(map[string]any{"iters": 3})
	if err != nil {
		t.Fatal(err)
	}
	var prev []byte
	for _, workers := range []int{1, 4, 1} {
		res, err := exp.Run(RunContext{Ctx: context.Background(), Seed: 9, Workers: workers, Values: v})
		if err != nil {
			t.Fatal(err)
		}
		payload, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil && !bytes.Equal(prev, payload) {
			t.Fatalf("JSON differs across runs/workers:\n%s\n%s", prev, payload)
		}
		prev = payload
	}
}
