#!/usr/bin/env bash
# Observability overhead gate: the instrumented Figure-12 corpus run
# (metrics registry + tracer + continuous profiler + SLO tracker, the
# workers=1-obs benchmark variant) must stay within OBS_OVERHEAD_PCT
# (default 10) percent of the uninstrumented workers=1 run. Medians of
# OBS_GATE_COUNT (default 5) repetitions via cmd/benchjson smooth over
# scheduler noise. Run by CI's benchmark-smoke job; the same medians
# land in BENCH_runner.json whenever `make bench` refreshes it. Needs
# jq.
set -euo pipefail

PCT="${OBS_OVERHEAD_PCT:-10}"
COUNT="${OBS_GATE_COUNT:-5}"
OUT="${OBS_GATE_OUT:-$(mktemp)}"

go test -run '^$' -bench 'BenchmarkRunnerFigure12Corpus/^workers=1(-obs)?$' \
  -short -benchtime 1x -count "$COUNT" -benchmem . \
  | go run ./cmd/benchjson -o "$OUT"

base="$(jq -r '.benchmarks[] | select(.name | test("workers=1$")) | .ns_per_op' "$OUT")"
inst="$(jq -r '.benchmarks[] | select(.name | test("workers=1-obs$")) | .ns_per_op' "$OUT")"
[ -n "$base" ] && [ -n "$inst" ] || { echo "gate: benchmark medians missing from $OUT" >&2; exit 1; }

overhead="$(awk -v b="$base" -v i="$inst" 'BEGIN { printf "%.2f", (i - b) / b * 100 }')"
echo "obs overhead gate: uninstrumented ${base} ns/op, instrumented ${inst} ns/op, overhead ${overhead}% (budget ${PCT}%)"
awk -v o="$overhead" -v p="$PCT" 'BEGIN { exit !(o <= p) }' \
  || { echo "observability overhead ${overhead}% exceeds the ${PCT}% budget" >&2; exit 1; }
