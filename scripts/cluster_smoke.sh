#!/usr/bin/env bash
# Cluster chaos smoke test: boot a 3-node nightvisiond fleet (race
# detector on), run a Figure-12-subset sweep round-robin across the
# nodes, kill -9 one node mid-run, retry its submissions on the
# survivors, and assert (a) every cell's result is served by every
# survivor with identical bytes and (b) each survivor's terminal jobs
# were counted exactly once. Run by CI's cluster-chaos job. Needs
# curl + jq.
set -euo pipefail

HOST="${NIGHTVISION_HOST:-127.0.0.1}"
P1="${NIGHTVISION_P1:-7811}"
P2="${NIGHTVISION_P2:-7812}"
P3="${NIGHTVISION_P3:-7813}"
PEERS="nv1=$HOST:$P1,nv2=$HOST:$P2,nv3=$HOST:$P3"
TMP="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

# The race detector rides along: any data race in the cluster layers
# (forwarding, stealing, shipping, adoption) fails the smoke test.
go build -race -o "$TMP/nightvisiond" ./cmd/nightvisiond

start_node() { # id port
  "$TMP/nightvisiond" -addr "$HOST:$2" -cache-dir "$TMP/$1" -workers 2 \
    -node-id "$1" -peers "$PEERS" -cluster-tick 100ms &
  PIDS+=($!)
}

wait_healthy() { # port
  local delay=0.05
  for _ in $(seq 1 60); do
    curl -fsS "http://$HOST:$1/v1/healthz" >/dev/null 2>&1 && return 0
    sleep "$delay"
    delay="$(awk -v d="$delay" 'BEGIN { m = d * 2; if (m > 1) m = 1; print m }')"
  done
  echo "node on port $1 never became healthy" >&2
  return 1
}

start_node nv1 "$P1"
start_node nv2 "$P2"
start_node nv3 "$P3"
wait_healthy "$P1"; wait_healthy "$P2"; wait_healthy "$P3"

echo "== ring membership =="
for port in "$P1" "$P2" "$P3"; do
  CST="$(curl -fsS "http://$HOST:$port/v1/cluster")"
  echo "$CST" | jq -c '{self, successor, peers: [.peers[] | {id, alive}]}'
  [ "$(echo "$CST" | jq '[.peers[] | select(.alive)] | length')" -eq 3 ] \
    || { echo "node on $port does not see 3 alive peers" >&2; exit 1; }
done

port_of() { # node id -> port
  case "$1" in nv1) echo "$P1" ;; nv2) echo "$P2" ;; nv3) echo "$P3" ;; esac
}

echo "== cluster observability: merged trace, federation, SLO, profilez =="
# Find a submission nv1 forwards (distinct seeds: with 3 ring owners at
# least one of six cells lands off-node) and demand the merged
# cross-node timeline — with the forward hop span and per-node process
# attribution — from the ENTRY node, which does not hold the job and
# must proxy.
TRACE_JOB=""
FWD=""
for seed in 141 142 143 144 145 146; do
  RESP="$(curl -fsS -D "$TMP/hdrs" -X POST -H 'Content-Type: application/json' \
    -d "{\"experiment\":\"fig12\",\"params\":{\"iters\":2,\"corpus\":2,\"top\":1},\"seed\":$seed}" \
    "http://$HOST:$P1/v1/jobs")"
  FWD="$(awk -F': ' 'tolower($1) == "x-nightvision-forwarded-to" { gsub(/\r/, "", $2); print $2 }' "$TMP/hdrs")"
  if [ -n "$FWD" ]; then
    TRACE_JOB="$(echo "$RESP" | jq -r .id)"
    echo "seed $seed forwarded nv1 -> $FWD (job $TRACE_JOB)"
    break
  fi
done
[ -n "$TRACE_JOB" ] || { echo "no submission was forwarded; trace proxy unexercised" >&2; exit 1; }
OWNER_PORT="$(port_of "$FWD")"
for _ in $(seq 1 600); do
  STATE="$(curl -fsS "http://$HOST:$OWNER_PORT/v1/jobs/$TRACE_JOB" | jq -r .state)"
  [ "$STATE" = "done" ] && break
  sleep 0.1
done
[ "$STATE" = "done" ] || { echo "forwarded job $TRACE_JOB never finished ($STATE)" >&2; exit 1; }
TR="$(curl -fsS "http://$HOST:$P1/v1/jobs/$TRACE_JOB/trace")"
echo "$TR" | jq -e '[.traceEvents[] | select(.name == "forward")] | length >= 1' >/dev/null \
  || { echo "merged trace lacks the forward hop span" >&2; exit 1; }
echo "$TR" | jq -e '[.traceEvents[] | select(.ph == "M" and .name == "process_name")] | length >= 2' >/dev/null \
  || { echo "merged trace lacks per-node process attribution" >&2; exit 1; }
echo "merged cross-node trace served via proxy from the entry node"

# Metrics federation: the fleet is quiescent, so the federated
# aggregate must equal the sum of the per-node scrapes.
SUM=0
for port in "$P1" "$P2" "$P3"; do
  V="$(curl -fsS "http://$HOST:$port/v1/metrics?format=json" \
    | jq '[.[] | select(.name == "jobs_submitted_total")][0].value // 0')"
  SUM=$((SUM + V))
done
FED="$(curl -fsS "http://$HOST:$P2/v1/cluster/metrics?format=json")"
AGG="$(echo "$FED" | jq '[.[] | select(.name == "cluster_jobs_submitted_total")][0].value // 0')"
[ "$AGG" -eq "$SUM" ] || { echo "federated submissions $AGG != per-node sum $SUM" >&2; exit 1; }
SCRAPED="$(echo "$FED" | jq '[.[] | select(.name == "cluster_nodes_scraped")][0].level // 0')"
[ "$SCRAPED" -eq 3 ] || { echo "federation scraped $SCRAPED nodes, want 3" >&2; exit 1; }
# Capture before grepping: grep -q exits at first match, and the EPIPE
# it hands curl reads as pipeline failure under pipefail.
PROM="$(curl -fsS "http://$HOST:$P3/v1/cluster/metrics")"
grep -q '^cluster_jobs_submitted_total' <<<"$PROM" \
  || { echo "prometheus federation exposition missing aggregate" >&2; exit 1; }
echo "federated metrics: $AGG submissions across 3 scraped nodes"

# SLO + continuous profiling surfaces.
curl -fsS "http://$HOST:$P1/v1/slo" | jq -e '.healthy and (.objectives | length >= 2)' >/dev/null \
  || { echo "SLO report unhealthy or incomplete on a healthy fleet" >&2; exit 1; }
curl -fsS "http://$HOST:$P1/v1/profilez" | jq -e '.current.goroutines > 0' >/dev/null \
  || { echo "profilez served no live sample" >&2; exit 1; }
curl -fsS "http://$HOST:$P1/v1/healthz" | jq -e '.slo_healthy == true' >/dev/null \
  || { echo "healthz does not reflect SLO health" >&2; exit 1; }
echo "SLO healthy, profiler live"

# Figure-12-subset sweep: 2 corpus sizes x 3 seeds, submitted
# round-robin across the fleet. Forwarding routes each cell to its ring
# owner regardless of the entry node.
BODIES=()
for corpus in 2 3; do
  for seed in 41 42 43; do
    BODIES+=("{\"experiment\":\"fig12\",\"params\":{\"iters\":3,\"corpus\":$corpus,\"top\":2},\"seed\":$seed}")
  done
done
PORTS=("$P1" "$P2" "$P3")

echo "== sweep (kill -9 nv2 mid-run) =="
KEYS=()
i=0
for body in "${BODIES[@]}"; do
  if [ "$i" -eq 3 ]; then
    # Mid-sweep murder: nv2 goes away without any shutdown path running.
    kill -9 "${PIDS[1]}"
    wait "${PIDS[1]}" 2>/dev/null || true
    echo "killed nv2 (pid ${PIDS[1]}) after $i submissions"
    PORTS=("$P1" "$P3")
  fi
  port="${PORTS[$((i % ${#PORTS[@]}))]}"
  RESP="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "http://$HOST:$port/v1/jobs" || true)"
  KEY="$(echo "$RESP" | jq -r '.key // empty' 2>/dev/null || true)"
  [ -n "$KEY" ] && KEYS+=("$KEY")
  i=$((i + 1))
done

# Client retry: resubmit every cell to a survivor. Content addressing
# makes this idempotent — anything already computed (or adopted from
# nv2's shipped WAL) comes back from cache; anything lost with nv2's
# unshipped journal tail is recomputed, bit-identically.
for body in "${BODIES[@]}"; do
  RESP="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "http://$HOST:$P1/v1/jobs")"
  KEYS+=("$(echo "$RESP" | jq -r .key)")
done
UNIQUE_KEYS="$(printf '%s\n' "${KEYS[@]}" | sort -u)"
N_KEYS="$(echo "$UNIQUE_KEYS" | wc -l | tr -d ' ')"
[ "$N_KEYS" -eq ${#BODIES[@]} ] || { echo "sweep produced $N_KEYS unique keys, want ${#BODIES[@]}" >&2; exit 1; }

echo "== byte identity across survivors ($N_KEYS cells) =="
for key in $UNIQUE_KEYS; do
  ok=0
  for _ in $(seq 1 600); do
    if curl -fsS -o "$TMP/r1" "http://$HOST:$P1/v1/results/$key" 2>/dev/null; then ok=1; break; fi
    sleep 0.2
  done
  [ "$ok" = 1 ] || { echo "cell $key never materialized on nv1" >&2; exit 1; }
  curl -fsS -o "$TMP/r3" "http://$HOST:$P3/v1/results/$key" || { echo "cell $key missing on nv3" >&2; exit 1; }
  H1="$(sha256sum "$TMP/r1" | cut -d' ' -f1)"
  H3="$(sha256sum "$TMP/r3" | cut -d' ' -f1)"
  [ "$H1" = "$H3" ] || { echo "cell $key differs across survivors: $H1 vs $H3" >&2; exit 1; }
done
echo "all $N_KEYS cells byte-identical on both survivors"

echo "== exactly-once terminal accounting =="
for port in "$P1" "$P3"; do
  # Every job terminal...
  for _ in $(seq 1 600); do
    PENDING="$(curl -fsS "http://$HOST:$port/v1/jobs" | jq '[.[] | select(.state == "queued" or .state == "running")] | length')"
    [ "$PENDING" -eq 0 ] && break
    sleep 0.2
  done
  [ "$PENDING" -eq 0 ] || { echo "node on $port still has $PENDING non-terminal jobs" >&2; exit 1; }
  # ...and exactly one terminal transition per job: the summed
  # jobs_completed_total counter equals the job count.
  JOBS="$(curl -fsS "http://$HOST:$port/v1/jobs" | jq 'length')"
  DONE="$(curl -fsS "http://$HOST:$port/v1/metrics" | awk '$1 ~ /^jobs_completed_total/ { s += $2 } END { print s+0 }')"
  [ "$JOBS" -eq "$DONE" ] || { echo "node on $port: $DONE terminal transitions for $JOBS jobs" >&2; exit 1; }
  echo "port $port: $JOBS jobs, $DONE terminal transitions"
done

echo "== survivors noticed the death =="
TRANS="$(curl -fsS "http://$HOST:$P1/v1/metrics" | awk '$1 ~ /^cluster_peer_health_transitions_total\{peer="nv2"\}/ { print $2 }')"
[ -n "$TRANS" ] && [ "$TRANS" -ge 1 ] || { echo "nv1 never recorded nv2's death" >&2; exit 1; }
ALIVE2="$(curl -fsS "http://$HOST:$P1/v1/metrics" | awk '$1 ~ /^cluster_peer_alive\{peer="nv2"\}/ { print $2 }')"
[ "$ALIVE2" = 0 ] || { echo "nv1 still thinks nv2 is alive ($ALIVE2)" >&2; exit 1; }

echo "== restart nv2: WAL replay over the surviving dirs =="
start_node nv2 "$P2"
wait_healthy "$P2"
for _ in $(seq 1 600); do
  PENDING="$(curl -fsS "http://$HOST:$P2/v1/jobs" | jq '[.[] | select(.state == "queued" or .state == "running")] | length')"
  [ "$PENDING" -eq 0 ] && break
  sleep 0.2
done
[ "$PENDING" -eq 0 ] || { echo "restarted nv2 never drained its replayed jobs" >&2; exit 1; }
# Replayed-then-recomputed cells must agree with the survivors' bytes.
for key in $(curl -fsS "http://$HOST:$P2/v1/jobs" | jq -r '[.[] | select(.state == "done")] | .[].key' | sort -u); do
  H2="$(curl -fsS "http://$HOST:$P2/v1/results/$key" | sha256sum | cut -d' ' -f1)"
  H1="$(curl -fsS "http://$HOST:$P1/v1/results/$key" | sha256sum | cut -d' ' -f1)"
  [ "$H2" = "$H1" ] || { echo "restarted nv2 cell $key diverges: $H2 vs $H1" >&2; exit 1; }
done
echo "restarted nv2 replayed its journal to survivor-identical bytes"

echo "== graceful shutdown =="
for p in "${PIDS[@]}"; do kill -TERM "$p" 2>/dev/null || true; done
for p in "${PIDS[@]}"; do
  for _ in $(seq 1 100); do
    kill -0 "$p" 2>/dev/null || break
    sleep 0.1
  done
done
PIDS=()

echo "== netchaos leg: lossy links + partition that heals =="
# A fresh fleet whose every peer request rides a seeded netchaos
# transport (deterministic drops + latency), with a mid-sweep
# "partition" (SIGSTOP freezes nv2 without killing it: peers see pure
# silence, exactly like a network split). After SIGCONT the fleet must
# reconverge, serve every cell byte-identically from all three nodes,
# and the federated metrics must show the retry machinery engaged
# (retries > 0) with zero checksum rejects — lossy-but-untampered
# links must never trip the segment integrity check.
start_chaos_node() { # id port
  "$TMP/nightvisiond" -addr "$HOST:$2" -cache-dir "$TMP/chaos-$1" -workers 2 \
    -node-id "$1" -peers "$PEERS" -cluster-tick 100ms \
    -chaos-net-seed 7 -chaos-net-drop 0.15 -chaos-net-latency 5ms \
    -net-backoff 20ms &
  PIDS+=($!)
}
start_chaos_node nv1 "$P1"
start_chaos_node nv2 "$P2"
start_chaos_node nv3 "$P3"
wait_healthy "$P1"; wait_healthy "$P2"; wait_healthy "$P3"

CBODIES=()
for corpus in 2 3; do
  for seed in 61 62 63; do
    CBODIES+=("{\"experiment\":\"fig12\",\"params\":{\"iters\":2,\"corpus\":$corpus,\"top\":1},\"seed\":$seed}")
  done
done
CPORTS=("$P1" "$P3")
i=0
for body in "${CBODIES[@]}"; do
  if [ "$i" -eq 3 ]; then
    kill -STOP "${PIDS[1]}"
    echo "SIGSTOP nv2 (pid ${PIDS[1]}): one-sided silence, the process survives"
    # The survivors' phi-accrual detectors must cross the threshold.
    for _ in $(seq 1 200); do
      ALIVE2="$(curl -fsS "http://$HOST:$P1/v1/metrics" | awk '$1 ~ /^cluster_peer_alive\{peer="nv2"\}/ { print $2 }')"
      [ "$ALIVE2" = 0 ] && break
      sleep 0.1
    done
    [ "$ALIVE2" = 0 ] || { echo "nv1 never suspected the partitioned nv2" >&2; exit 1; }
    echo "nv1 declared nv2 dead via phi accrual"
  fi
  port="${CPORTS[$((i % ${#CPORTS[@]}))]}"
  curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" \
    "http://$HOST:$port/v1/jobs" >/dev/null || true
  i=$((i + 1))
done

kill -CONT "${PIDS[1]}"
echo "SIGCONT nv2: partition heals"
for _ in $(seq 1 200); do
  ALIVE2="$(curl -fsS "http://$HOST:$P1/v1/metrics" | awk '$1 ~ /^cluster_peer_alive\{peer="nv2"\}/ { print $2 }')"
  [ "$ALIVE2" = 1 ] && break
  sleep 0.1
done
[ "$ALIVE2" = 1 ] || { echo "nv1 never revived nv2 after the heal" >&2; exit 1; }
echo "nv2 revived on nv1's failure detector"

# Client retry pass on the healed fleet (idempotent by content
# addressing), then byte identity on all three nodes.
CKEYS=()
for body in "${CBODIES[@]}"; do
  RESP="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$body" "http://$HOST:$P2/v1/jobs")"
  CKEYS+=("$(echo "$RESP" | jq -r .key)")
done
for key in $(printf '%s\n' "${CKEYS[@]}" | sort -u); do
  ok=0
  for _ in $(seq 1 600); do
    if curl -fsS -o "$TMP/c1" "http://$HOST:$P1/v1/results/$key" 2>/dev/null; then ok=1; break; fi
    sleep 0.2
  done
  [ "$ok" = 1 ] || { echo "chaos cell $key never materialized on nv1" >&2; exit 1; }
  H1="$(sha256sum "$TMP/c1" | cut -d' ' -f1)"
  for port in "$P2" "$P3"; do
    HX="$(curl -fsS "http://$HOST:$port/v1/results/$key" | sha256sum | cut -d' ' -f1)"
    [ "$HX" = "$H1" ] || { echo "chaos cell $key differs on port $port: $HX vs $H1" >&2; exit 1; }
  done
done
echo "all chaos cells byte-identical on all three nodes"

FED="$(curl -fsS "http://$HOST:$P1/v1/cluster/metrics?format=json")"
RETRIES="$(echo "$FED" | jq '[.[] | select(.name == "cluster_net_retries_total") | .value // 0] | add // 0')"
[ "$RETRIES" -ge 1 ] || { echo "federated cluster_net_retries_total is $RETRIES on a lossy network, want >= 1" >&2; exit 1; }
REJECTS="$(echo "$FED" | jq '[.[] | select(.name == "cluster_segment_checksum_rejects_total") | .value // 0] | add // 0')"
[ "$REJECTS" -eq 0 ] || { echo "lossy-but-untampered links produced $REJECTS checksum rejects, want 0" >&2; exit 1; }
echo "federated: $RETRIES retries, 0 checksum rejects"

echo "== netchaos leg graceful shutdown =="
for p in "${PIDS[@]}"; do kill -TERM "$p" 2>/dev/null || true; done
for p in "${PIDS[@]}"; do
  for _ in $(seq 1 100); do
    kill -0 "$p" 2>/dev/null || break
    sleep 0.1
  done
done
PIDS=()
echo "cluster chaos smoke test passed"
