#!/usr/bin/env bash
# Daemon smoke test: build nightvisiond, start it with a disk cache,
# submit a small Figure 2 job, poll it to completion, then submit the
# identical request and require a cache hit whose result key and bytes
# match the cold run. Run by CI and `make smoke`. Needs curl + jq.
set -euo pipefail

ADDR="${NIGHTVISIOND_ADDR:-127.0.0.1:7797}"
BASE="http://$ADDR"
TMP="$(mktemp -d)"
DPID=""
trap '[ -n "$DPID" ] && kill "$DPID" 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/nightvisiond" ./cmd/nightvisiond

# wait_healthy polls /v1/healthz with exponential backoff (50ms .. 1s,
# ~30s budget) until the daemon answers or its process dies.
wait_healthy() {
  local delay=0.05 up=0
  for _ in $(seq 1 60); do
    if curl -fsS "$BASE/v1/healthz" >/dev/null 2>&1; then up=1; break; fi
    if ! kill -0 "$DPID" 2>/dev/null; then echo "daemon died during startup" >&2; exit 1; fi
    sleep "$delay"
    delay="$(awk -v d="$delay" 'BEGIN { m = d * 2; if (m > 1) m = 1; print m }')"
  done
  [ "$up" = 1 ] || { echo "daemon never became healthy" >&2; exit 1; }
}

"$TMP/nightvisiond" -addr "$ADDR" -cache-dir "$TMP/cache" -workers 2 &
DPID=$!
wait_healthy

echo "== experiments =="
curl -fsS "$BASE/v1/experiments" | jq -r '.[].name' | tr '\n' ' '; echo

BODY='{"experiment":"fig2","params":{"iters":3},"seed":42}'

echo "== submit (cold) =="
J1="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" "$BASE/v1/jobs")"
ID="$(echo "$J1" | jq -r .id)"
[ "$ID" != null ] || { echo "no job id in: $J1" >&2; exit 1; }

# Poll to completion.
STATE=""
POLL=""
for _ in $(seq 1 100); do
  POLL="$(curl -fsS "$BASE/v1/jobs/$ID")"
  STATE="$(echo "$POLL" | jq -r .state)"
  [ "$STATE" = done ] && break
  [ "$STATE" = failed ] && { echo "job failed: $POLL" >&2; exit 1; }
  sleep 0.1
done
[ "$STATE" = done ] || { echo "job never finished (state=$STATE)" >&2; exit 1; }
KEY1="$(echo "$POLL" | jq -r .key)"
HASH1="$(echo "$POLL" | jq -cS .result | sha256sum | cut -d' ' -f1)"
echo "cold run done: key=$KEY1"

echo "== submit (identical; must hit the cache) =="
J2="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$BODY" "$BASE/v1/jobs")"
[ "$(echo "$J2" | jq -r .from_cache)" = true ] || { echo "second submission missed the cache: $J2" >&2; exit 1; }
[ "$(echo "$J2" | jq -r .state)" = done ] || { echo "cache hit not done: $J2" >&2; exit 1; }
KEY2="$(echo "$J2" | jq -r .key)"
HASH2="$(echo "$J2" | jq -cS .result | sha256sum | cut -d' ' -f1)"
[ "$KEY1" = "$KEY2" ] || { echo "cache keys differ: $KEY1 vs $KEY2" >&2; exit 1; }
[ "$HASH1" = "$HASH2" ] || { echo "result hashes differ: $HASH1 vs $HASH2" >&2; exit 1; }
echo "cache hit verified: result sha256 $HASH1"

echo "== cache stats =="
curl -fsS "$BASE/v1/healthz" | jq -c .cache
[ "$(curl -fsS "$BASE/v1/healthz" | jq -r .cache.hits)" -ge 1 ] || { echo "hit counter did not advance" >&2; exit 1; }

echo "== version =="
VERSION="$(curl -fsS "$BASE/v1/version")"
echo "$VERSION" | jq -c .
[ "$(echo "$VERSION" | jq -r .code_version)" != null ] || { echo "no code_version in: $VERSION" >&2; exit 1; }

echo "== metrics =="
METRICS="$(curl -fsS "$BASE/v1/metrics")"
# The resubmit above was served from the cache, so the Prometheus
# exposition must show at least one store hit (counters print as plain
# integers in text format 0.0.4).
CACHE_HITS="$(echo "$METRICS" | awk '$1 == "store_cache_hits_total" { print $2 }')"
[ -n "$CACHE_HITS" ] || { echo "store_cache_hits_total missing from /v1/metrics" >&2; exit 1; }
[ "$CACHE_HITS" -ge 1 ] || { echo "store_cache_hits_total=$CACHE_HITS, want >= 1" >&2; exit 1; }
echo "store_cache_hits_total=$CACHE_HITS"
echo "$METRICS" | grep -q '^jobs_submitted_total ' || { echo "jobs_submitted_total missing" >&2; exit 1; }
echo "$METRICS" | grep -q '^btb_lookups_total ' || { echo "btb_lookups_total missing" >&2; exit 1; }
curl -fsS "$BASE/v1/metrics?format=json" | jq -e 'length > 0' >/dev/null || { echo "JSON metrics snapshot empty" >&2; exit 1; }

echo "== job trace =="
curl -fsS "$BASE/v1/jobs/$ID/trace" | jq -e '.traceEvents | length >= 0' >/dev/null || { echo "job trace not loadable JSON" >&2; exit 1; }

echo "== crash recovery (kill -9, restart, journal replay) =="
# Submit a fresh job and kill the daemon hard before polling it: the
# write-ahead journal under the cache dir must bring the job back after
# a restart and drive it to done with a result — no resubmission.
CRASH_BODY='{"experiment":"fig2","params":{"iters":30},"seed":43}'
J3="$(curl -fsS -X POST -H 'Content-Type: application/json' -d "$CRASH_BODY" "$BASE/v1/jobs")"
CID="$(echo "$J3" | jq -r .id)"
[ "$CID" != null ] || { echo "no job id in: $J3" >&2; exit 1; }
kill -9 "$DPID"
wait "$DPID" 2>/dev/null || true

"$TMP/nightvisiond" -addr "$ADDR" -cache-dir "$TMP/cache" -workers 2 &
DPID=$!
wait_healthy

RSTATE=""
RPOLL=""
for _ in $(seq 1 100); do
  RPOLL="$(curl -fsS "$BASE/v1/jobs/$CID" || true)"
  RSTATE="$(echo "$RPOLL" | jq -r .state 2>/dev/null || true)"
  [ "$RSTATE" = done ] && break
  case "$RSTATE" in failed|canceled|timed_out) echo "replayed job ended $RSTATE: $RPOLL" >&2; exit 1;; esac
  sleep 0.1
done
[ "$RSTATE" = done ] || { echo "journal replay never finished job $CID (state=$RSTATE)" >&2; exit 1; }
[ "$(echo "$RPOLL" | jq -r .result)" != null ] || { echo "replayed job has no result: $RPOLL" >&2; exit 1; }
echo "journal replay verified: $CID done after kill -9 (interrupted=$(echo "$RPOLL" | jq -r .interrupted))"

echo "== graceful shutdown =="
kill -TERM "$DPID"
for _ in $(seq 1 100); do
  kill -0 "$DPID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$DPID" 2>/dev/null; then echo "daemon ignored SIGTERM" >&2; exit 1; fi
DPID=""
echo "daemon smoke test passed"
