// Package repro is a from-scratch Go reproduction of "All Your PC Are
// Belong to Us: Exploiting Non-control-Transfer Instruction BTB Updates
// for Dynamic PC Extraction" (Yu, Jaeger, Fletcher — ISCA 2023).
//
// The repository contains two halves:
//
//   - a deterministic micro-architectural simulator that implements the
//     paper's reverse-engineered Intel BTB behaviors (internal/btb,
//     internal/cpu) plus the OS/SGX environment the attacks assume
//     (internal/mem, internal/osmodel, internal/sgx), and
//   - the NightVision attack framework itself (internal/core) with the
//     full evaluation (internal/experiments) — every figure regenerates
//     from `go test -bench=.`.
//
// See README.md for a tour, DESIGN.md for the substitution rationale and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured numbers.
// The root package holds only the integration tests and the benchmark
// harness.
package repro
