# NightVision build/test/bench entry points.

.PHONY: build test race bench smoke

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -short ./...

# bench records the perf trajectory: every benchmark once (the repo's
# benchmarks are deterministic reproductions, so one iteration is the
# figure; timing trends live in ns/op), parsed into BENCH_runner.json.
bench:
	go test -run '^$$' -bench . -short -benchtime 1x -benchmem | go run ./cmd/benchjson -o BENCH_runner.json

# smoke starts nightvisiond, submits a Figure 2 job, polls it to
# completion and verifies the cache-hit path — the same flow CI runs.
smoke:
	./scripts/daemon_smoke.sh
