# NightVision build/test/bench entry points.

.PHONY: build test race bench smoke obs-gate

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -short ./...

# bench records the perf trajectory. The benchmarks are deterministic
# reproductions, so one iteration per run is the figure (-benchtime 1x),
# but a single sample is at the mercy of scheduler noise: -count=5 runs
# each benchmark five times and benchjson keeps the per-name median, so
# BENCH_runner.json holds stable numbers instead of n=1 one-offs.
bench:
	go test -run '^$$' -bench . -short -benchtime 1x -count 5 -benchmem | go run ./cmd/benchjson -o BENCH_runner.json

# obs-gate asserts the instrumented Figure-12 corpus run (metrics +
# tracer + profiler + SLO tracker) stays within 10% of uninstrumented.
obs-gate:
	./scripts/obs_overhead_gate.sh

# smoke starts nightvisiond, submits a Figure 2 job, polls it to
# completion and verifies the cache-hit path — the same flow CI runs.
smoke:
	./scripts/daemon_smoke.sh
