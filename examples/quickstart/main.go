// Quickstart: the NV-Core primitive in ~60 lines.
//
// An attacker monitors a range of victim code addresses through the BTB:
// it plants branch-target-buffer entries at *aliased* addresses (same
// low 32 bits, 4 GiB away — the BTB cannot tell them apart because its
// tags are truncated), lets the victim run, and probes. If the victim
// fetched any byte of the watched range, the entry was deallocated by a
// decode-time false hit and the probe sees a misprediction bubble.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/isa"
	"repro/internal/mem"
)

func main() {
	// A victim whose secret selects one of two code paths through a
	// branchless indirect dispatch (the shape control-flow-randomization
	// defenses produce — and exactly what NightVision still sees).
	prog := asm.MustAssemble(`
		.org 0x400000
	start:
		movabs r2, hotpath
		movabs r3, coldpath
		cmpi r1, 0          ; r1 holds the secret
		cmovz r2, r3
		callr r2
		hlt
		.org 0x400100
	hotpath:
		.space 20, 0x01     ; 20 nops
		ret
		.org 0x400200
	coldpath:
		.space 20, 0x01
		ret
	`)

	m := mem.New()
	prog.LoadInto(m)
	m.Map(0x7f_0000, 0x1000, mem.PermRW)
	c := cpu.New(cpu.Config{}, m)

	// The attacker aliases the victim 4 GiB up (SkyLake BTB geometry).
	attacker, err := core.NewAttacker(c, 1<<32)
	if err != nil {
		log.Fatal(err)
	}
	// Watch 16 bytes inside the hot path.
	monitor, err := attacker.NewMonitor([]core.PW{{Base: 0x40_0100, Len: 16}})
	if err != nil {
		log.Fatal(err)
	}

	for _, secret := range []uint64{1, 0} {
		// The attacker clears stale predictor state (the paper's
		// flushBTB jump slide) and plants fresh entries.
		c.BTB.Flush()
		if err := monitor.Prime(); err != nil {
			log.Fatal(err)
		}

		// Victim runs with its secret in r1.
		var saved cpu.ArchState
		st := cpu.ArchState{PC: prog.MustLabel("start")}
		st.Regs[isa.SP] = 0x7f_1000
		st.Regs[isa.R1] = secret
		c.ContextSwitch(&saved, &st)
		for !c.Halted() {
			if _, err := c.Step(); err != nil && err != cpu.ErrHalted {
				log.Fatal(err)
			}
		}
		c.ContextSwitch(nil, &saved)

		match, err := monitor.Probe()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("secret=%d  hot path observed by BTB probe: %v\n", secret, match[0])
	}
	fmt.Println("\nThe attacker never read victim memory or registers —")
	fmt.Println("only the timing of its own jumps after the victim ran.")
}
