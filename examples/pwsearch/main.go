// Pwsearch: the NV-S prediction-window traversal (§6.3, Figure 10) on
// a single instruction, narrated step by step.
//
// A privileged attacker single-steps an enclave and, for one chosen
// dynamic instruction, binary-searches its byte-exact PC using the
// BTB's range-query semantics: a monitored PW matches exactly when the
// instruction's fetch reaches its last byte, so shrinking matched
// windows pin the PC down to the byte.
//
// Run: go run ./examples/pwsearch
package main

import (
	"fmt"
	"log"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mem"
	"repro/internal/sgx"
)

func main() {
	// A private enclave: straight-line code. The attacker wants the PC
	// of every step without ever reading the code.
	prog := asm.MustAssemble(`
		.org 0x600000
	entry:
		movi r1, 7
		movi r2, 5
		add r1, r2
		xor r3, r3
		mul r1, r2
		nop
		subi r1, 3
		hlt
	`)
	c := cpu.New(cpu.Config{}, mem.New())
	enc, err := sgx.Create(c, prog, sgx.Config{
		Entry: prog.MustLabel("entry"),
		Stack: sgx.Region{Addr: 0x7f_0000, Size: 0x1000},
	})
	if err != nil {
		log.Fatal(err)
	}
	attacker, err := core.NewAttacker(c, 1<<32)
	if err != nil {
		log.Fatal(err)
	}
	sup := core.NewSupervisorAttack(attacker, enc, core.SupervisorConfig{BlocksPerCall: 8})
	defer sup.Close()

	res, err := sup.ExtractTrace()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("enclave executed %d steps; NV-S used %d full executions\n\n", len(res.Trace), res.Runs)
	fmt.Println("reconstructed dynamic PC trace (the attacker never read the code):")
	for i, e := range res.Trace {
		fmt.Printf("  step %d: PC = %#x  (page %#x, candidates %#x)\n",
			i, e.PC, res.Pages[i], res.CandidateSets[i])
	}
	fmt.Println("\ncost model (Figure 10): 1 discovery run + 128/N coarse runs +")
	fmt.Println("grid and byte refinement runs per touched 32-byte block.")
}
