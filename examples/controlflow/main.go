// Controlflow: use case 1 of the paper (§5, §7.2) — leaking the secret
// branch directions of a *defended* GCD through NV-U.
//
// The victim is an mbedTLS-3.0-style binary GCD compiled with every
// prior-work mitigation enabled: branch balancing (equal-size arms),
// 16-byte basic-block alignment, and control-flow randomization
// (branchless target select + randomized indirect trampolines). All of
// them fail, because NightVision observes which *addresses* execute,
// not how the branch behaves.
//
// Run: go run ./examples/controlflow
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/victim"
)

func main() {
	cfg := experiments.Config{Iters: 1, Seed: 2024}

	fmt.Println("victim: mbedtls_mpi_gcd (v3.0) with balancing + alignment + CFR")
	fmt.Println("attack: NV-U, one prediction window inside each branch arm")
	fmt.Println()

	res, err := experiments.UseCase1GCD(cfg, 10, experiments.AllDefenses())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("10 RSA-keygen runs: %v\n", res)
	fmt.Println("paper reports 99.3% over 100 runs — the defenses do not help.")
	fmt.Println()

	// Show a single run's recovered bit-stream next to the ground truth.
	a, b := uint64(65537), uint64(0xDEAD_BEEF_CAFE_1235)
	dirs, err := victim.GCDBranchDirections("3.0", a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one run, gcd(%d, %#x): %d secret branch decisions\n", a, b, len(dirs))
	fmt.Print("ground truth: ")
	for _, d := range dirs {
		if d {
			fmt.Print("T")
		} else {
			fmt.Print("e")
		}
	}
	fmt.Println("\n(T = then arm, e = else arm; the attack recovers this sequence)")
}
