// Fingerprint: use case 2 of the paper (§6, §7.3) — identifying a
// function inside a *private* SGX enclave.
//
// The enclave's code is confidential (SGX PCL): the attacker cannot
// read a single byte of it. NV-S single-steps the enclave, extracts the
// byte-exact PC of every dynamic instruction through the BTB side
// channel, slices the trace at call/ret boundaries, and matches the
// normalized PC set against reference fingerprints of known library
// functions.
//
// Run: go run ./examples/fingerprint
package main

import (
	"fmt"
	"log"

	"repro/internal/codegen"
	"repro/internal/experiments"
	"repro/internal/fingerprint"
	"repro/internal/victim"
)

func main() {
	cfg := experiments.Config{Iters: 1, Seed: 7}
	opts := codegen.Options{Opt: codegen.O2}

	// The "unknown" enclave binary actually contains bn_cmp.
	secretFn := victim.BnCmp(false)
	args := []uint64{0x0123_4567_89AB_CDEF, 0x0123_4567_0000_0000}

	fmt.Println("extracting the private enclave's dynamic PC trace with NV-S...")
	pcs, data, runs, err := experiments.NVSTrace(cfg, secretFn, opts, args)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d steps reconstructed using %d enclave executions\n", len(pcs), runs)

	traces := fingerprint.Slice(pcs, data)
	fmt.Printf("  sliced into %d function invocation(s)\n", len(traces))
	victimTrace := traces[0]
	for _, t := range traces {
		if len(t.PCs) > len(victimTrace.PCs) {
			victimTrace = t
		}
	}

	// The attacker's reference library: fingerprints of functions it
	// suspects might be inside (plus decoys).
	var refs []fingerprint.Reference
	for _, v := range []string{"2.5", "2.16", "3.0"} {
		ref, err := reference(victim.MustGCDVersion(v, false), opts, "gcd-"+v)
		if err != nil {
			log.Fatal(err)
		}
		refs = append(refs, ref)
	}
	bnRef, err := reference(victim.BnCmp(false), opts, "bn_cmp")
	if err != nil {
		log.Fatal(err)
	}
	refs = append(refs, bnRef)
	for i, fn := range victim.Corpus(victim.CorpusSpec{N: 50, Seed: 99}) {
		ref, err := reference(fn, opts, fmt.Sprintf("decoy-%02d", i))
		if err != nil {
			log.Fatal(err)
		}
		refs = append(refs, ref)
	}

	fmt.Println("\nranking the extracted trace against the reference library:")
	for i, s := range fingerprint.Rank(victimTrace, refs)[:5] {
		fmt.Printf("  #%d %-10s similarity %.3f\n", i+1, s.Label, s.Score)
	}
	name, score := fingerprint.BestMatch(victimTrace, refs)
	fmt.Printf("\nverdict: the private enclave runs %q (similarity %.3f)\n", name, score)
	fmt.Println("code confidentiality did not survive the PC trace.")
}

func reference(fn *codegen.Func, opts codegen.Options, name string) (fingerprint.Reference, error) {
	ref, err := experiments.ReferenceFor(fn, opts)
	if err != nil {
		return fingerprint.Reference{}, err
	}
	ref.Name = name
	return ref, nil
}
